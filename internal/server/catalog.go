package server

import (
	"crypto/sha256"
	"errors"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// The database catalog (catalog.nsf): one document per database on the
// server, refreshed by a server task, so users and administrators can
// browse what exists. Mirrors Domino's catalog task.

// CatalogPath is the catalog database's path in the data directory.
const CatalogPath = "catalog.nsf"

func catalogDocUNID(server, dbPath string) nsf.UNID {
	sum := sha256.Sum256([]byte("catalog:" + server + ":" + dbPath))
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}

// RefreshCatalog (re)writes one catalog document per open database and
// removes entries for databases no longer present. It returns the number
// of entries written.
func (s *Server) RefreshCatalog() (int, error) {
	cat, err := s.OpenDB(CatalogPath, core.Options{Title: "Database Catalog"})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	paths := make([]string, 0, len(s.dbs))
	dbs := make(map[string]*core.Database, len(s.dbs))
	for path, db := range s.dbs {
		if path == CatalogPath {
			continue
		}
		paths = append(paths, path)
		dbs[path] = db
	}
	s.mu.Unlock()
	sort.Strings(paths)

	valid := make(map[nsf.UNID]bool, len(paths))
	written := 0
	for _, path := range paths {
		db := dbs[path]
		unid := catalogDocUNID(s.opts.Name, path)
		valid[unid] = true
		n, err := cat.RawGet(unid)
		if errors.Is(err, core.ErrNotFound) {
			n = &nsf.Note{OID: nsf.OID{UNID: unid}, Class: nsf.ClassDocument, Created: s.clock.Now()}
			err = nil
		}
		if err != nil {
			return written, err
		}
		stats := db.Stats()
		n.SetWithFlags("Form", nsf.TextValue("Catalog"), nsf.FlagSummary)
		n.SetWithFlags("Server", nsf.TextValue(s.opts.Name), nsf.FlagSummary)
		n.SetWithFlags("Path", nsf.TextValue(path), nsf.FlagSummary)
		n.SetWithFlags("Title", nsf.TextValue(db.Title()), nsf.FlagSummary)
		n.SetWithFlags("ReplicaID", nsf.TextValue(db.ReplicaID().String()), nsf.FlagSummary)
		n.SetNumber("Notes", float64(stats.Notes))
		n.SetNumber("Pages", float64(stats.Pages))
		// Change-propagation health: feed position, worst consumer lag, and
		// how often consumers fell back to a rebuild.
		n.SetNumber("ChangeUSN", float64(stats.Feed.LastUSN))
		n.SetNumber("ChangeMaxLag", float64(stats.Feed.MaxLag))
		resyncs, dropped := 0.0, 0.0
		for _, sub := range stats.Feed.Subscribers {
			resyncs += float64(sub.Resyncs)
			if sub.Dropped {
				dropped++
			}
		}
		n.SetNumber("ChangeResyncs", resyncs)
		n.SetNumber("ChangeDroppedSubs", dropped)
		// Placement: which mates home this database and at what generation.
		// "*" means unplaced — any mate serves it.
		if p, ok := s.opts.Directory.GetPlacement(path); ok {
			n.SetWithFlags("PlacementHome", nsf.TextValue(strings.Join(p.Home, ",")), nsf.FlagSummary)
			n.SetNumber("PlacementGen", float64(p.Generation))
			n.SetNumber("PlacementReplicas", float64(p.Replicas))
		} else {
			n.SetWithFlags("PlacementHome", nsf.TextValue("*"), nsf.FlagSummary)
			n.SetNumber("PlacementGen", 0)
			n.SetNumber("PlacementReplicas", 0)
		}
		// Backup health: the USN the newest image captured and how stale it
		// is. BackupAgeSecs is -1 for a database never backed up this run —
		// the monitorable "this database has no recent backup" signal.
		if bs, ok := s.LastBackup(path); ok {
			n.SetNumber("BackupUSN", float64(bs.USN))
			n.SetNumber("BackupAgeSecs", float64(s.clock.Now()-bs.At)/1e9)
		} else {
			n.SetNumber("BackupUSN", 0)
			n.SetNumber("BackupAgeSecs", -1)
		}
		n.OID.Seq++
		n.OID.SeqTime = s.clock.Now()
		n.Modified = s.clock.Now()
		if err := cat.RawPut(n); err != nil {
			return written, err
		}
		written++
	}
	// Cluster-mate health docs: per-mate push-drop counts and queue depth,
	// so an administrator browsing the catalog sees which mate is behind.
	upsert := func(unid nsf.UNID, form string, set func(n *nsf.Note)) error {
		valid[unid] = true
		n, err := cat.RawGet(unid)
		if errors.Is(err, core.ErrNotFound) {
			n = &nsf.Note{OID: nsf.OID{UNID: unid}, Class: nsf.ClassDocument, Created: s.clock.Now()}
			err = nil
		}
		if err != nil {
			return err
		}
		n.SetWithFlags("Form", nsf.TextValue(form), nsf.FlagSummary)
		n.SetWithFlags("Server", nsf.TextValue(s.opts.Name), nsf.FlagSummary)
		set(n)
		n.OID.Seq++
		n.OID.SeqTime = s.clock.Now()
		n.Modified = s.clock.Now()
		return cat.RawPut(n)
	}
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	for _, p := range pushers {
		dropped, queued := p.snapshot()
		err := upsert(catalogDocUNID(s.opts.Name, "clustermate:"+p.mateName), "ClusterMate", func(n *nsf.Note) {
			n.SetWithFlags("Mate", nsf.TextValue(p.mateName), nsf.FlagSummary)
			n.SetText("Addr", p.mateAddr)
			n.SetNumber("Dropped", float64(dropped))
			n.SetNumber("Queue", float64(queued))
		})
		if err != nil {
			return written, err
		}
		written++
	}
	// Mesh link docs: one per configured replication link, carrying the
	// link's definition and live counters (rounds, failures, breaker state,
	// lag) so an administrator browsing the catalog sees the mesh's health.
	if m := s.Mesh(); m != nil {
		for _, st := range m.Status() {
			err := upsert(catalogDocUNID(s.opts.Name, "meshlink:"+st.Name), "MeshLink", func(n *nsf.Note) {
				n.SetWithFlags("Link", nsf.TextValue(st.Name), nsf.FlagSummary)
				n.SetWithFlags("Peer", nsf.TextValue(st.Peer), nsf.FlagSummary)
				n.SetText("Glob", st.Glob)
				n.SetText("Formula", st.Formula)
				n.SetText("Direction", st.Direction.String())
				n.SetText("Class", st.Class.String())
				n.SetNumber("Rounds", float64(st.Rounds))
				n.SetNumber("Failures", float64(st.Failures))
				breaker := 0.0
				if st.BreakerOpen {
					breaker = 1
				}
				n.SetNumber("BreakerOpen", breaker)
				n.SetNumber("SkippedDBs", float64(st.SkippedDBs))
				n.SetNumber("NotesIn", float64(st.NotesIn))
				n.SetNumber("NotesOut", float64(st.NotesOut))
				n.SetNumber("LagSecs", st.Lag.Seconds())
				n.SetText("Note", st.Note)
			})
			if err != nil {
				return written, err
			}
			written++
		}
	}
	// Server health doc: the availability index and admission counters —
	// the catalog entry a cluster-aware client or admin reads to decide
	// where work should go.
	h := s.Health()
	state := "OPEN"
	if h.State == wire.StateRestricted {
		state = "RESTRICTED"
	}
	err = upsert(catalogDocUNID(s.opts.Name, "health:server"), "ServerHealth", func(n *nsf.Note) {
		n.SetWithFlags("State", nsf.TextValue(state), nsf.FlagSummary)
		n.SetNumber("AvailabilityIndex", float64(h.Index))
		n.SetNumber("InFlight", float64(h.InFlight))
		n.SetNumber("Queued", float64(h.Queued))
		n.SetNumber("Sheds", float64(h.Sheds))
		n.SetNumber("PanicsRecovered", float64(h.Panics))
		n.SetNumber("LatencyUs", float64(h.Latency.Microseconds()))
		n.SetNumber("Dispatched", float64(h.Dispatched))
		n.SetNumber("DeadlineSheds", float64(h.DeadlineSheds))
		n.SetNumber("DeadlineAborts", float64(h.DeadlineAborts))
	})
	if err != nil {
		return written, err
	}
	written++

	// Drop catalog docs for databases (and mates) that disappeared.
	catalogForms := map[string]bool{"Catalog": true, "ClusterMate": true, "ServerHealth": true, "MeshLink": true}
	var stale []nsf.UNID
	err = cat.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() &&
			catalogForms[n.Text("Form")] && !valid[n.OID.UNID] {
			stale = append(stale, n.OID.UNID)
		}
		return true
	})
	if err != nil {
		return written, err
	}
	for _, u := range stale {
		if err := cat.RawDelete(u); err != nil {
			return written, err
		}
	}
	return written, nil
}
