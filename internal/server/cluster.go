package server

import (
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// Cluster replication: Domino clusters push changes to cluster mates as
// they happen (event-driven), rather than waiting for the scheduled
// replicator. Every save on a clustered database is queued and applied on
// each mate within moments. The scheduled replicator remains the catch-up
// path after outages — and a dropped push now *tells* it to run: drops
// fire the server's OnClusterDrop callback, which dominod wires into the
// replication jobs' ChangeTriggers for an immediate catch-up pass.

// clusterEvent is one pending push.
type clusterEvent struct {
	dbPath string
	note   *nsf.Note
}

// clusterPusher streams change events to one cluster mate.
type clusterPusher struct {
	server   *Server
	mateName string
	mateAddr string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []clusterEvent
	closed  bool
	busy    bool // a batch is being delivered right now
	dropped int

	client  *wire.Client
	remotes map[string]*wire.RemoteDB
}

// EnableClustering starts event-driven push replication to the given mates
// (name -> address) for every database the server has opened or will open.
// Events that cannot be delivered after retries are dropped and left to the
// scheduled replicator; Dropped() exposes the count and OnClusterDrop
// turns each drop into a catch-up signal.
func (s *Server) EnableClustering(mates map[string]string) {
	s.mu.Lock()
	for name, addr := range mates {
		p := &clusterPusher{server: s, mateName: name, mateAddr: addr, remotes: make(map[string]*wire.RemoteDB)}
		p.cond = sync.NewCond(&p.mu)
		s.cluster = append(s.cluster, p)
		s.wg.Add(1)
		go p.run()
	}
	// Hook databases that are already open.
	dbs := make(map[string]*core.Database, len(s.dbs))
	for path, db := range s.dbs {
		dbs[path] = db
	}
	s.mu.Unlock()
	for path, db := range dbs {
		s.hookClusterDB(path, db)
	}
}

// ClusterMates returns the names of the configured cluster mates.
func (s *Server) ClusterMates() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.cluster))
	for _, p := range s.cluster {
		names = append(names, p.mateName)
	}
	return names
}

// OnClusterDrop registers fn to be called (outside all locks) whenever a
// push event is abandoned to the scheduled replicator, with the mate name
// and database path. dominod wires this into the matching replication
// job's ChangeTrigger so a drop schedules an immediate catch-up run
// instead of waiting out the polling interval.
func (s *Server) OnClusterDrop(fn func(mate, dbPath string)) {
	s.onClusterDrop.Store(fn)
}

// notifyClusterDrop fires the registered drop callback, if any.
func (s *Server) notifyClusterDrop(mate, dbPath string) {
	if fn, ok := s.onClusterDrop.Load().(func(mate, dbPath string)); ok && fn != nil {
		fn(mate, dbPath)
	}
}

// localOnlyDBs are server-private databases that never cluster-replicate.
var localOnlyDBs = map[string]bool{
	"mail.box":  true,
	LogPath:     true,
	CatalogPath: true,
}

// hookClusterDB subscribes the cluster pushers to a database's changes.
func (s *Server) hookClusterDB(path string, db *core.Database) {
	if localOnlyDBs[path] {
		return
	}
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	if len(pushers) == 0 {
		return
	}
	db.OnChange(func(n *nsf.Note) {
		if n.Class == nsf.ClassReplFormula {
			return // local bookkeeping never replicates
		}
		ev := clusterEvent{dbPath: path, note: n.Clone()}
		for _, p := range pushers {
			p.enqueue(ev)
		}
	})
}

func (p *clusterPusher) enqueue(ev clusterEvent) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	const maxQueue = 10000
	if len(p.queue) >= maxQueue {
		p.dropped++
		p.mu.Unlock()
		p.server.notifyClusterDrop(p.mateName, ev.dbPath)
		return
	}
	p.queue = append(p.queue, ev)
	p.cond.Signal()
	p.mu.Unlock()
}

// drop records one abandoned event and signals the catch-up path.
func (p *clusterPusher) drop(ev clusterEvent, err error) {
	p.mu.Lock()
	p.dropped++
	p.mu.Unlock()
	p.server.notifyClusterDrop(p.mateName, ev.dbPath)
	log.Printf("cluster: push to %s failed: %v", p.mateName, err)
}

// snapshot returns the pusher's drop count and current queue depth.
func (p *clusterPusher) snapshot() (dropped, queued int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped, len(p.queue)
}

// Dropped returns events abandoned due to overflow or delivery failure, for
// all mates.
func (s *Server) Dropped() int {
	total := 0
	for _, d := range s.DroppedByMate() {
		total += d
	}
	return total
}

// DroppedByMate returns abandoned push events per cluster mate.
func (s *Server) DroppedByMate() map[string]int {
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	out := make(map[string]int, len(pushers))
	for _, p := range pushers {
		d, _ := p.snapshot()
		out[p.mateName] += d
	}
	return out
}

// clusterFlushed reports whether every pusher's queue is empty and no
// batch is mid-delivery — the drain condition Quiesce waits on.
func (s *Server) clusterFlushed() bool {
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	for _, p := range pushers {
		p.mu.Lock()
		pending := len(p.queue) > 0 || p.busy
		p.mu.Unlock()
		if pending {
			return false
		}
	}
	return true
}

// run drains the queue, delivering events to the mate.
func (p *clusterPusher) run() {
	defer p.server.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			p.disconnect()
			return
		}
		batch := p.queue
		p.queue = nil
		p.busy = true
		p.mu.Unlock()
		for i, ev := range batch {
			if err := p.deliver(ev); err != nil {
				// One reconnect attempt, then hand the event to the
				// scheduled replicator (drop).
				p.disconnect()
				if err := p.deliver(ev); err != nil {
					p.drop(ev, err)
					// A dead mate fails every event the same way; drop
					// the rest of the batch in one sweep (each drop still
					// signals catch-up) instead of paying a dial timeout
					// per event, then let the queue rebuild.
					for _, rest := range batch[i+1:] {
						p.drop(rest, err)
					}
					time.Sleep(50 * time.Millisecond)
					break
				}
			}
		}
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
	}
}

// deliver applies one event on the mate, connecting lazily. The dial uses
// a fast-fail profile (no internal retries, short timeout): the pusher has
// its own retry/drop ladder, and a slow inner retry loop would stall
// Close and Quiesce behind a dead mate.
func (p *clusterPusher) deliver(ev clusterEvent) error {
	if p.client == nil {
		c, err := wire.DialOptions(p.mateAddr, p.server.opts.Name, p.server.opts.PeerSecret,
			wire.Options{MaxRetries: -1, DialTimeout: 2 * time.Second,
				OpBudget: p.server.opts.PeerOpBudget})
		if err != nil {
			return err
		}
		p.client = c
		p.remotes = make(map[string]*wire.RemoteDB)
	}
	rdb, ok := p.remotes[ev.dbPath]
	if !ok {
		r, err := p.client.OpenDB(ev.dbPath)
		if err != nil {
			return err
		}
		rdb = r
		p.remotes[ev.dbPath] = rdb
	}
	_, err := rdb.Apply([]*nsf.Note{ev.note})
	return err
}

func (p *clusterPusher) disconnect() {
	if p.client != nil {
		p.client.Close()
		p.client = nil
		p.remotes = nil
	}
}

// stopCluster shuts the pushers down (called from Close).
func (s *Server) stopCluster() {
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	for _, p := range pushers {
		p.mu.Lock()
		p.closed = true
		p.cond.Signal()
		p.mu.Unlock()
	}
}
