package server

import (
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// Cluster replication: Domino clusters push changes to cluster mates as
// they happen (event-driven), rather than waiting for the scheduled
// replicator. Every save on a clustered database is queued and applied on
// each mate within moments. The scheduled replicator remains the catch-up
// path after outages.

// clusterEvent is one pending push.
type clusterEvent struct {
	dbPath string
	note   *nsf.Note
}

// clusterPusher streams change events to one cluster mate.
type clusterPusher struct {
	server   *Server
	mateName string
	mateAddr string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []clusterEvent
	closed  bool
	dropped int

	client  *wire.Client
	remotes map[string]*wire.RemoteDB
}

// EnableClustering starts event-driven push replication to the given mates
// (name -> address) for every database the server has opened or will open.
// Events that cannot be delivered after retries are dropped and left to the
// scheduled replicator; Dropped() exposes the count.
func (s *Server) EnableClustering(mates map[string]string) {
	s.mu.Lock()
	for name, addr := range mates {
		p := &clusterPusher{server: s, mateName: name, mateAddr: addr, remotes: make(map[string]*wire.RemoteDB)}
		p.cond = sync.NewCond(&p.mu)
		s.cluster = append(s.cluster, p)
		s.wg.Add(1)
		go p.run()
	}
	// Hook databases that are already open.
	dbs := make(map[string]*core.Database, len(s.dbs))
	for path, db := range s.dbs {
		dbs[path] = db
	}
	s.mu.Unlock()
	for path, db := range dbs {
		s.hookClusterDB(path, db)
	}
}

// localOnlyDBs are server-private databases that never cluster-replicate.
var localOnlyDBs = map[string]bool{
	"mail.box":  true,
	LogPath:     true,
	CatalogPath: true,
}

// hookClusterDB subscribes the cluster pushers to a database's changes.
func (s *Server) hookClusterDB(path string, db *core.Database) {
	if localOnlyDBs[path] {
		return
	}
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	if len(pushers) == 0 {
		return
	}
	db.OnChange(func(n *nsf.Note) {
		if n.Class == nsf.ClassReplFormula {
			return // local bookkeeping never replicates
		}
		ev := clusterEvent{dbPath: path, note: n.Clone()}
		for _, p := range pushers {
			p.enqueue(ev)
		}
	})
}

func (p *clusterPusher) enqueue(ev clusterEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	const maxQueue = 10000
	if len(p.queue) >= maxQueue {
		p.dropped++
		return
	}
	p.queue = append(p.queue, ev)
	p.cond.Signal()
}

// Dropped returns events abandoned due to overflow or delivery failure, for
// all mates.
func (s *Server) Dropped() int {
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	total := 0
	for _, p := range pushers {
		p.mu.Lock()
		total += p.dropped
		p.mu.Unlock()
	}
	return total
}

// run drains the queue, delivering events to the mate.
func (p *clusterPusher) run() {
	defer p.server.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			p.disconnect()
			return
		}
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		for _, ev := range batch {
			if err := p.deliver(ev); err != nil {
				// One reconnect attempt, then hand the event to the
				// scheduled replicator (drop).
				p.disconnect()
				if err := p.deliver(ev); err != nil {
					p.mu.Lock()
					p.dropped++
					p.mu.Unlock()
					log.Printf("cluster: push to %s failed: %v", p.mateName, err)
					time.Sleep(50 * time.Millisecond)
				}
			}
		}
	}
}

// deliver applies one event on the mate, connecting lazily.
func (p *clusterPusher) deliver(ev clusterEvent) error {
	if p.client == nil {
		c, err := wire.Dial(p.mateAddr, p.server.opts.Name, p.server.opts.PeerSecret)
		if err != nil {
			return err
		}
		p.client = c
		p.remotes = make(map[string]*wire.RemoteDB)
	}
	rdb, ok := p.remotes[ev.dbPath]
	if !ok {
		r, err := p.client.OpenDB(ev.dbPath)
		if err != nil {
			return err
		}
		rdb = r
		p.remotes[ev.dbPath] = rdb
	}
	_, err := rdb.Apply([]*nsf.Note{ev.note})
	return err
}

func (p *clusterPusher) disconnect() {
	if p.client != nil {
		p.client.Close()
		p.client = nil
		p.remotes = nil
	}
}

// stopCluster shuts the pushers down (called from Close).
func (s *Server) stopCluster() {
	s.mu.Lock()
	pushers := append([]*clusterPusher(nil), s.cluster...)
	s.mu.Unlock()
	for _, p := range pushers {
		p.mu.Lock()
		p.closed = true
		p.cond.Signal()
		p.mu.Unlock()
	}
}
