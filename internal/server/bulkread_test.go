package server

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/formula"
	"repro/internal/nsf"
	"repro/internal/view"
	"repro/internal/wire"
)

func mustCompile(t *testing.T, src string) *formula.Formula {
	t.Helper()
	f, err := formula.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// newBulkServer boots one server with an explicit page budget, a database
// with a categorized view, and full text enabled.
func newBulkServer(t *testing.T, maxRows, maxBytes int) (*Server, string, *core.Database) {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	d.AddUser(dir.User{Name: "bob", Secret: "bob-pw"})
	s, err := New(Options{
		Name: "bulk", DataDir: filepath.Join(t.TempDir(), "bulk"),
		Directory: d, MaxPageRows: maxRows, MaxPageBytes: maxBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	db, err := s.OpenDB("apps/bulk.nsf", core.Options{Title: "bulk"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)
	db.ACL().Set("bob", acl.Reader)
	def, err := view.NewDefinition("by cat", "SELECT @All",
		view.Column{Title: "Category", ItemName: "Category", Categorized: true},
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView(nil, def); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	return s, addr, db
}

// seedBulk creates docs spread over categories; every second one carries a
// reader field restricting it to ada.
func seedBulk(t *testing.T, db *core.Database, docs int) {
	t.Helper()
	sess := db.Session("ada")
	for i := 0; i < docs; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Category", fmt.Sprintf("cat-%d", i%3))
		n.SetText("Subject", fmt.Sprintf("doc %04d", i))
		n.SetText("Body", fmt.Sprintf("body words %d", i))
		if i%2 == 0 {
			n.SetWithFlags("DocReaders", nsf.TextValue("ada"), nsf.FlagReaders|nsf.FlagSummary)
		}
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
}

// rowKey flattens a view row (local or remote) for comparison.
func remoteRowKey(r wire.ViewRow) string {
	if r.IsCategory {
		return fmt.Sprintf("cat|%s|%d", r.Category, r.Indent)
	}
	return fmt.Sprintf("doc|%s|%d|%s", r.UNID, r.Indent, strings.Join(r.Columns, "\x00"))
}

func localRowKey(r view.Row) string {
	if r.Entry == nil {
		return fmt.Sprintf("cat|%s|%d", r.Category, r.Indent)
	}
	cols := make([]string, len(r.Entry.Values))
	for i := range cols {
		cols[i] = r.Entry.ColumnText(i)
	}
	return fmt.Sprintf("doc|%s|%d|%s", r.Entry.UNID, r.Indent, strings.Join(cols, "\x00"))
}

// TestViewPagesMatchLocalSession renders a categorized view through many
// small wire pages and checks the reassembled stream row-for-row against
// the local Session rendering — for the editor and for a reader whose
// reader-field filtering must hold identically on both paths.
func TestViewPagesMatchLocalSession(t *testing.T) {
	_, addr, db := newBulkServer(t, 16, 0) // smallest allowed pages force many round trips
	seedBulk(t, db, 50)

	for _, user := range []string{"ada", "bob"} {
		c, err := wire.Dial(addr, user, user+"-pw")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rdb, err := c.OpenDB("apps/bulk.nsf")
		if err != nil {
			t.Fatal(err)
		}
		remote, err := rdb.ViewRows("by cat")
		if err != nil {
			t.Fatalf("ViewRows as %s: %v", user, err)
		}
		local, err := db.Session(user).Rows("by cat")
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for _, r := range local {
			if r.GrandTotal {
				continue // synthetic totals row is not part of the wire stream
			}
			want = append(want, localRowKey(r))
		}
		got := make([]string, len(remote))
		for i, r := range remote {
			got[i] = remoteRowKey(r)
		}
		if len(got) != len(want) {
			t.Fatalf("as %s: wire rows %d, local rows %d", user, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("as %s row %d: wire %q, local %q", user, i, got[i], want[i])
			}
		}
		if user == "bob" {
			// Reader-field filtering actually removed rows for bob.
			adaRows, _ := db.Session("ada").Rows("by cat")
			if len(local) >= len(adaRows) {
				t.Errorf("reader filtering inert: bob %d rows, ada %d", len(local), len(adaRows))
			}
		}
	}
}

// TestViewPageByteBudget streams rows big enough that the byte budget, not
// the row cap, closes each page — and a single row larger than the budget
// still travels (a page always carries at least one row).
func TestViewPageByteBudget(t *testing.T) {
	_, addr, db := newBulkServer(t, 0, 1) // byte budget floors at minPageBytes (64 KiB)
	sess := db.Session("ada")
	big := strings.Repeat("x", 24<<10)
	const docs = 12
	for i := 0; i < docs; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("%04d %s", i, big))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	c, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	pages, rows := 0, 0
	for start := 0; ; {
		p, err := rdb.ViewPage("by cat", start, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Rows) == 0 {
			t.Fatal("empty page: paginated reader cannot make progress")
		}
		pages++
		for _, r := range p.Rows {
			if !r.IsCategory {
				rows++
			}
		}
		if !p.More {
			break
		}
		start = p.Next
	}
	if rows != docs {
		t.Errorf("streamed %d document rows, want %d", rows, docs)
	}
	// 12 docs x 24 KiB against a 64 KiB budget: at least 4 pages.
	if pages < 4 {
		t.Errorf("byte budget inert: %d pages for %d KiB of rows", pages, docs*24)
	}
}

// TestScanCursorResumesAcrossReconnect takes one scan page, drops the
// connection entirely, and resumes from the cursor on a fresh session:
// every document arrives exactly once.
func TestScanCursorResumesAcrossReconnect(t *testing.T) {
	// 16 is minPageRows, the smallest page the budget floor allows.
	_, addr, db := newBulkServer(t, 16, 0)
	seedBulk(t, db, 40)

	opts := wire.ScanOptions{Columns: []string{"Subject"}}
	c1, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	rdb1, err := c1.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rdb1.ScanPage(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.More || len(p1.Rows) != 16 {
		t.Fatalf("first page = %d rows, more=%v", len(p1.Rows), p1.More)
	}
	c1.Close()

	seen := map[nsf.UNID]bool{}
	for _, r := range p1.Rows {
		seen[r.UNID] = true
	}
	c2, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rdb2, err := c2.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	cursor := p1.Cursor
	for {
		p, err := rdb2.ScanPage(opts, cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range p.Rows {
			if seen[r.UNID] {
				t.Errorf("document %s delivered twice across resume", r.UNID)
			}
			seen[r.UNID] = true
		}
		if !p.More {
			break
		}
		cursor = p.Cursor
	}
	if len(seen) != 40 {
		t.Errorf("scan delivered %d distinct documents, want 40", len(seen))
	}
}

// TestScanCursorBoundToServer rejects cursors minted elsewhere or
// malformed: NoteIDs are per-physical-copy.
func TestScanCursorBoundToServer(t *testing.T) {
	if _, err := decodeScanCursor(encodeScanCursor("other", 7), "bulk"); err == nil {
		t.Error("foreign cursor accepted")
	}
	if id, err := decodeScanCursor(encodeScanCursor("bulk", 7), "bulk"); err != nil || id != 7 {
		t.Errorf("own cursor = (%d, %v)", id, err)
	}
	if id, err := decodeScanCursor(nil, "bulk"); err != nil || id != 0 {
		t.Errorf("empty cursor = (%d, %v)", id, err)
	}
	for _, bad := range [][]byte{{99}, {scanCursorVersion, 200, 1}, {scanCursorVersion}} {
		if _, err := decodeScanCursor(bad, "bulk"); err == nil {
			t.Errorf("malformed cursor %v accepted", bad)
		}
	}
}

// TestScanFormulaProjectionAndACL runs a selection formula with a typed
// projection over the wire, for the editor and for the reader-restricted
// user.
func TestScanFormulaProjectionAndACL(t *testing.T) {
	_, addr, db := newBulkServer(t, 0, 0)
	seedBulk(t, db, 30)

	opts := wire.ScanOptions{
		Formula: `SELECT Category = "cat-1"`,
		Columns: []string{"Subject", "NoSuchItem"},
	}
	for _, user := range []string{"ada", "bob"} {
		c, err := wire.Dial(addr, user, user+"-pw")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rdb, err := c.OpenDB("apps/bulk.nsf")
		if err != nil {
			t.Fatal(err)
		}
		var got []wire.ScanRow
		if err := rdb.Scan(opts, func(r wire.ScanRow) bool {
			got = append(got, r)
			return true
		}); err != nil {
			t.Fatalf("Scan as %s: %v", user, err)
		}
		// The local baseline: same formula, same user.
		want := map[nsf.UNID]string{}
		sel := mustCompile(t, opts.Formula)
		if err := db.Session(user).ScanFrom(0, sel, func(n *nsf.Note) bool {
			want[n.OID.UNID] = n.Text("Subject")
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("as %s: wire scan %d docs, local %d", user, len(got), len(want))
		}
		for _, r := range got {
			if r.Values[0].String() != want[r.UNID] {
				t.Errorf("as %s: projected subject %q, want %q", user, r.Values[0].String(), want[r.UNID])
			}
			if r.Values[1].Type != 0 {
				t.Errorf("missing item projected as type %d, want absent", r.Values[1].Type)
			}
		}
	}
	// bob must see strictly fewer cat-1 docs than ada (reader fields).
	countFor := func(user string) int {
		n := 0
		sel := mustCompile(t, opts.Formula)
		db.Session(user).ScanFrom(0, sel, func(*nsf.Note) bool { n++; return true })
		return n
	}
	if countFor("bob") >= countFor("ada") {
		t.Error("reader-field filtering inert on scan path")
	}
}

// TestSearchPagesWithColumns pages ranked hits with joined summary columns
// over the wire and cross-checks against the local session.
func TestSearchPagesWithColumns(t *testing.T) {
	_, addr, db := newBulkServer(t, 0, 0)
	seedBulk(t, db, 30)

	c, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	// Page through with limit 4 and joined columns.
	var hits []wire.SearchHit
	total := -1
	for start := 0; ; {
		p, err := rdb.SearchPage("body", []string{"Subject", "Ghost"}, start, 4)
		if err != nil {
			t.Fatal(err)
		}
		if total == -1 {
			total = p.Total
		} else if p.Total != total {
			t.Errorf("total drifted: %d then %d", total, p.Total)
		}
		if len(p.Hits) > 4 {
			t.Errorf("page of %d hits exceeds limit 4", len(p.Hits))
		}
		hits = append(hits, p.Hits...)
		if !p.More {
			break
		}
		start = p.Next
	}
	local, err := db.Session("ada").SearchJoined("body", []string{"Subject", "Ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(local) || total != len(local) {
		t.Fatalf("wire %d hits (total %d), local %d", len(hits), total, len(local))
	}
	for i, h := range hits {
		if h.UNID != local[i].UNID || h.Score != local[i].Score {
			t.Errorf("hit %d = (%s, %g), local (%s, %g)", i, h.UNID, h.Score, local[i].UNID, local[i].Score)
		}
		if h.Values[0].String() != local[i].Values[0].String() {
			t.Errorf("hit %d joined subject %q, local %q", i, h.Values[0].String(), local[i].Values[0].String())
		}
		if h.Values[1].Type != 0 {
			t.Errorf("hit %d ghost column type %d, want absent", i, h.Values[1].Type)
		}
	}
	// ACL: bob's wire search must match bob's local search, and be smaller.
	cb, err := wire.Dial(addr, "bob", "bob-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	rdbB, err := cb.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	bobHits, err := rdbB.Search("body")
	if err != nil {
		t.Fatal(err)
	}
	bobLocal, err := db.Session("bob").Search("body")
	if err != nil {
		t.Fatal(err)
	}
	if len(bobHits) != len(bobLocal) || len(bobHits) >= len(hits) {
		t.Errorf("bob: wire %d, local %d, ada %d", len(bobHits), len(bobLocal), len(hits))
	}
}

// TestSearchEmptyQueryOverWire: stopword-only and empty queries return no
// hits and no error, end to end.
func TestSearchEmptyQueryOverWire(t *testing.T) {
	_, addr, db := newBulkServer(t, 0, 0)
	seedBulk(t, db, 5)
	c, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"", "the", "the of and", "..."} {
		hits, err := rdb.Search(q)
		if err != nil {
			t.Errorf("Search(%q) error: %v", q, err)
		}
		if len(hits) != 0 {
			t.Errorf("Search(%q) = %d hits, want 0", q, len(hits))
		}
	}
	// A malformed query is still an error.
	if _, err := rdb.Search(`"unterminated`); err == nil {
		t.Error("malformed query accepted over wire")
	}
}
