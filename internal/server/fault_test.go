package server

import (
	"context"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/wire"
)

// newFaultServer starts a server with one database and short conn
// deadlines, returning the server and its address.
func newFaultServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	opts.Name = "hub"
	opts.DataDir = filepath.Join(t.TempDir(), "hub")
	opts.Directory = d
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if _, err := s.OpenDB("apps/db.nsf", core.Options{Title: "db"}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr
}

// checkServes asserts a well-behaved client can still complete a full
// round trip against the server.
func checkServes(t *testing.T, addr string) {
	t.Helper()
	c, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatalf("healthy client cannot connect: %v", err)
	}
	defer c.Close()
	db, err := c.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatalf("healthy client cannot open db: %v", err)
	}
	if _, err := db.Info(); err != nil {
		t.Fatalf("healthy client cannot query: %v", err)
	}
}

// TestDispatchSurvivesGarbage throws seeded random request payloads at the
// dispatcher for every opcode (and invalid ones): it must return error
// responses, never panic.
func TestDispatchSurvivesGarbage(t *testing.T) {
	s, _ := newFaultServer(t, Options{})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		st := &connState{s: s, handles: make(map[uint32]*handleState), nextH: 1}
		if rng.Intn(2) == 0 {
			st.user = "ada" // exercise both pre- and post-auth paths
		}
		op := wire.Op(rng.Intn(40)) // includes ops beyond the defined range
		body := make([]byte, rng.Intn(128))
		rng.Read(body)
		resp := st.dispatch(context.Background(), op, wire.NewDec(body))
		if resp == nil {
			t.Fatalf("dispatch(%#x) returned nil response", byte(op))
		}
	}
}

// TestServerSurvivesRawCorruption sends malformed byte streams straight at
// the listener: oversized length prefixes, truncated frames, and garbage
// bodies. The server must drop the offender and keep serving others.
func TestServerSurvivesRawCorruption(t *testing.T) {
	_, addr := newFaultServer(t, Options{})
	send := func(raw []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write(raw)
		// Read whatever comes back (error response or close); bounded.
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}
	send([]byte{0xFF, 0xFF, 0xFF, 0xFF})                      // 4 GiB frame claim
	send([]byte{0xFF, 0xFF, 0x00, 0x00})                      // 64 KiB claim, no body
	send([]byte{0x08, 0x00, 0x00, 0x00, 0xDE, 0xAD})          // truncated body
	send([]byte{0x04, 0x00, 0x00, 0x00, 0x99, 0x98, 0x97, 1}) // garbage op
	send([]byte{0x00, 0x00, 0x00, 0x00})                      // empty frame
	garbage := make([]byte, 2048)
	rand.New(rand.NewSource(7)).Read(garbage)
	send(append([]byte{0x00, 0x08, 0x00, 0x00}, garbage...)) // 2 KiB of noise
	checkServes(t, addr)
}

// TestServerIdleTimeoutUnblocksHandler proves a half-sent frame cannot pin
// a handler goroutine: the deadline fires and the server drops the conn.
func TestServerIdleTimeoutUnblocksHandler(t *testing.T) {
	_, addr := newFaultServer(t, Options{IdleTimeout: 200 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{0x10, 0x00}) // half a header, then silence
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a stalled connection alive")
	}
	checkServes(t, addr)
}

// TestReplicaIDRoundTrip exercises the OpReplicaID RPC end to end.
func TestReplicaIDRoundTrip(t *testing.T) {
	s, addr := newFaultServer(t, Options{})
	local, _ := s.DB("apps/db.nsf")
	c, err := wire.Dial(addr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := db.ReplicaID()
	if err != nil {
		t.Fatalf("ReplicaID: %v", err)
	}
	if rid != local.ReplicaID() {
		t.Errorf("remote replica %v != local %v", rid, local.ReplicaID())
	}
}
