// Package server implements the Domino server: a data directory of NSF
// databases exposed over the wire protocol, with authentication against
// the directory and background router and replicator tasks.
package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/mesh"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/wire"
)

// Options configure a server.
type Options struct {
	// Name is the server's name, e.g. "hub". It should exist in the
	// directory (with a secret) so peers can authenticate to it and mail
	// can address it.
	Name string
	// DataDir is the directory holding the server's databases.
	DataDir string
	// Directory is the shared user/group registry.
	Directory *dir.Directory
	// Clock supplies time; nil uses the wall clock.
	Clock *clock.Clock
	// FieldMerge enables field-level conflict merging for replication
	// applies on this server.
	FieldMerge bool
	// Peers maps remote server names to their addresses for mail
	// forwarding.
	Peers map[string]string
	// PeerSecret authenticates this server to its peers (looked up in
	// their directories under Name).
	PeerSecret string
	// AdvertiseAddr is the address placement resolves report for this
	// server (OpResolve home sets, WrongMate redirects). Empty uses the
	// bound listener address, which is right for single-host tests but
	// not behind NAT or 0.0.0.0 binds.
	AdvertiseAddr string
	// IdleTimeout bounds how long a connection may sit without delivering
	// a complete request frame before the server drops it; it also bounds
	// how long a half-sent frame can stall the handler. 0 uses the 5m
	// default; negative disables the deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response frame. 0 uses the 30s
	// default; negative disables the deadline.
	WriteTimeout time.Duration
	// SyncWAL fsyncs every database's WAL on every operation (per-database
	// store options can also turn this on individually).
	SyncWAL bool
	// GroupCommitWindow enables group commit for every database the server
	// opens: concurrent committers share one WAL force instead of paying one
	// fsync each (see store.Options.GroupCommitWindow). 200µs is a good
	// value with SyncWAL on. Per-database store options take precedence.
	GroupCommitWindow time.Duration
	// ArchiveLogDir, when non-empty, turns on WAL archiving for every
	// database the server opens: each database's sealed log segments go to
	// <ArchiveLogDir>/<dbpath>.walog, preserving complete history for
	// incremental backup verification and point-in-time recovery.
	ArchiveLogDir string
	// MaxInFlight bounds concurrently executing requests across all
	// connections (admission control). Requests beyond it wait up to
	// AdmitWait for a slot and are then shed with a busy response carrying
	// the availability index. 0 uses 256; negative disables admission
	// control entirely.
	MaxInFlight int
	// AdmitWait bounds how long an arriving request may queue for an
	// execution slot before being shed. 0 uses 100ms; negative sheds
	// immediately once the pool is full.
	AdmitWait time.Duration
	// TargetLatency anchors the availability index's latency term: a
	// dispatch-latency EWMA at or below it costs nothing, ten times it
	// saturates the term. 0 uses 25ms.
	TargetLatency time.Duration
	// MaxPageRows caps rows per bulk-read page (view pages, scan pages,
	// search pages) when the client does not ask for less. 0 uses 4096.
	MaxPageRows int
	// MaxPageBytes caps the encoded size of one bulk-read page; a page
	// closes as soon as its response crosses this, so no response frame can
	// approach wire.MaxFrame no matter how wide the rows are. 0 uses 4 MiB.
	MaxPageBytes int
	// PeerOpBudget, when > 0, stamps a deadline budget on every operation
	// this server issues to its peers — mesh replication rounds and
	// cluster push deliveries — so one stalled peer cannot pin a
	// replication session or a pusher goroutine indefinitely; the peer
	// sheds or aborts the op when the budget is spent. 0 disables peer
	// budgets (seed behaviour).
	PeerOpBudget time.Duration
}

// Server is a running Domino-style server.
type Server struct {
	opts  Options
	clock *clock.Clock

	mu      sync.Mutex
	dbs     map[string]*core.Database
	cluster []*clusterPusher
	mesh    *mesh.Mesh
	conns   map[net.Conn]struct{}
	backups map[string]BackupStatus

	monitor monitorState

	admission admissionState
	draining  atomic.Bool

	// putSess maps a pipelined-put session key (user, client key, database)
	// to the highest batch sequence durably applied, so a batch re-sent
	// after a reconnect skips its already-applied prefix. The map is
	// bounded: beyond maxPutSessions the oldest session is evicted (FIFO),
	// which only costs an evicted client its replay protection, never
	// correctness of fresh batches.
	putSessMu sync.Mutex
	putSess   map[string]uint64
	putSessQ  []string
	// onClusterDrop, when set, is called (outside locks) for every cluster
	// push event abandoned to the scheduled replicator.
	onClusterDrop atomic.Value // of func(mate, dbPath string)
	// testPreDispatch, when set by tests before Serve, runs at the top of
	// every dispatched request — the hook for injecting panics and delays.
	testPreDispatch func(op wire.Op, budget time.Duration)

	router *router.Router

	ln     net.Listener
	wg     sync.WaitGroup
	closed bool
}

// New creates a server, its data directory, and its mail.box.
func New(opts Options) (*Server, error) {
	if opts.Directory == nil {
		return nil, errors.New("server: a directory is required")
	}
	ck := opts.Clock
	if ck == nil {
		ck = clock.New()
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	switch {
	case opts.IdleTimeout == 0:
		opts.IdleTimeout = 5 * time.Minute
	case opts.IdleTimeout < 0:
		opts.IdleTimeout = 0
	}
	switch {
	case opts.WriteTimeout == 0:
		opts.WriteTimeout = 30 * time.Second
	case opts.WriteTimeout < 0:
		opts.WriteTimeout = 0
	}
	switch {
	case opts.MaxInFlight == 0:
		opts.MaxInFlight = 256
	case opts.MaxInFlight < 0:
		opts.MaxInFlight = 0 // admission disabled
	}
	switch {
	case opts.AdmitWait == 0:
		opts.AdmitWait = 100 * time.Millisecond
	case opts.AdmitWait < 0:
		opts.AdmitWait = 0 // shed immediately at saturation
	}
	if opts.TargetLatency <= 0 {
		opts.TargetLatency = 25 * time.Millisecond
	}
	if opts.MaxPageRows <= 0 {
		opts.MaxPageRows = 4096
	}
	if opts.MaxPageBytes <= 0 {
		opts.MaxPageBytes = 4 << 20
	}
	s := &Server{
		opts:  opts,
		clock: ck,
		dbs:   make(map[string]*core.Database),
		conns: make(map[net.Conn]struct{}),
	}
	s.admission.init(opts)
	mailbox, err := s.OpenDB("mail.box", core.Options{Title: "Mail Router Box"})
	if err != nil {
		return nil, err
	}
	s.router = &router.Router{
		ServerName:   opts.Name,
		Mailbox:      mailbox,
		Directory:    opts.Directory,
		OpenMailFile: func(path string) (*core.Database, error) { return s.OpenDB(path, core.Options{Title: path}) },
		Forward:      s.forwardMail,
	}
	return s, nil
}

// Name returns the server name.
func (s *Server) Name() string { return s.opts.Name }

// SetPeers replaces the peer address map (server name -> address). Useful
// when peer addresses are only known after the peers have started.
func (s *Server) SetPeers(peers map[string]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]string, len(peers))
	for name, addr := range peers {
		m[strings.ToLower(name)] = addr
	}
	s.opts.Peers = m
}

// Clock returns the server clock.
func (s *Server) Clock() *clock.Clock { return s.clock }

// Router returns the mail router.
func (s *Server) Router() *router.Router { return s.router }

// cleanDBPath normalizes and validates a database path within the data dir.
func cleanDBPath(path string) (string, error) {
	p := filepath.ToSlash(filepath.Clean(path))
	if p == "." || p == "" || strings.HasPrefix(p, "../") || strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("server: invalid database path %q", path)
	}
	return p, nil
}

// OpenDB opens (or creates) a database by data-directory-relative path.
// Databases stay open for the life of the server.
func (s *Server) OpenDB(path string, opts core.Options) (*core.Database, error) {
	key, err := cleanDBPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.dbs[key]; ok {
		return db, nil
	}
	full := filepath.Join(s.opts.DataDir, filepath.FromSlash(key))
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return nil, err
	}
	opts.Directory = s.opts.Directory
	opts.Clock = s.clock
	if s.opts.SyncWAL {
		opts.Store.SyncWAL = true
	}
	if s.opts.GroupCommitWindow > 0 && opts.Store.GroupCommitWindow == 0 {
		opts.Store.GroupCommitWindow = s.opts.GroupCommitWindow
	}
	if s.opts.ArchiveLogDir != "" && opts.Store.ArchiveDir == "" {
		opts.Store.ArchiveDir = s.archiveDirFor(key)
	}
	db, err := core.Open(full, opts)
	if err != nil {
		return nil, err
	}
	s.dbs[key] = db
	clustered := len(s.cluster) > 0
	s.mu.Unlock()
	if clustered {
		s.hookClusterDB(key, db)
	}
	s.hookMonitorDB(key, db)
	s.mu.Lock()
	return db, nil
}

// maxPutSessions bounds the pipelined-put cursor map.
const maxPutSessions = 4096

// putCursor returns the highest durably-applied batch sequence for a
// pipelined-put session (0 if unknown).
func (s *Server) putCursor(key string) uint64 {
	s.putSessMu.Lock()
	defer s.putSessMu.Unlock()
	return s.putSess[key]
}

// advancePutCursor records that every batch sequence up to seq is durably
// applied for the session. Cursors only move forward.
func (s *Server) advancePutCursor(key string, seq uint64) {
	s.putSessMu.Lock()
	defer s.putSessMu.Unlock()
	if s.putSess == nil {
		s.putSess = make(map[string]uint64)
	}
	if cur, ok := s.putSess[key]; ok {
		if seq > cur {
			s.putSess[key] = seq
		}
		return
	}
	if len(s.putSessQ) >= maxPutSessions {
		delete(s.putSess, s.putSessQ[0])
		s.putSessQ = s.putSessQ[1:]
	}
	s.putSess[key] = seq
	s.putSessQ = append(s.putSessQ, key)
}

// DB returns an already-open database.
func (s *Server) DB(path string) (*core.Database, bool) {
	key, err := cleanDBPath(path)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.dbs[key]
	return db, ok
}

// forwardMail ships a message to a peer server's mail.box over the wire.
func (s *Server) forwardMail(serverName string, msg *nsf.Note) error {
	s.mu.Lock()
	addr, ok := s.opts.Peers[strings.ToLower(serverName)]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no address for peer %s", serverName)
	}
	c, err := wire.Dial(addr, s.opts.Name, s.opts.PeerSecret)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.MailDeposit(msg)
}

// ReplicateWith replicates a local database against the same-path database
// on a peer server over the wire.
func (s *Server) ReplicateWith(peerName, addr, dbPath string, opts repl.Options) (repl.Stats, error) {
	db, err := s.OpenDB(dbPath, core.Options{})
	if err != nil {
		return repl.Stats{}, err
	}
	c, err := wire.Dial(addr, s.opts.Name, s.opts.PeerSecret)
	if err != nil {
		return repl.Stats{}, err
	}
	defer c.Close()
	remote, err := c.OpenDB(dbPath)
	if err != nil {
		return repl.Stats{}, err
	}
	if opts.PeerName == "" {
		opts.PeerName = peerName + "!!" + dbPath
	}
	opts.Apply.FieldMerge = s.opts.FieldMerge
	stats, err := repl.Replicate(db, remote, opts)
	if err != nil {
		s.logf(LogReplication, "%s with %s failed: %v", dbPath, peerName, err)
		return stats, err
	}
	if stats.Pull.Total()+stats.Push.Total() > 0 {
		s.logf(LogReplication, "%s with %s: %s", dbPath, peerName, stats)
	}
	return stats, nil
}

// Start begins serving on addr (use "127.0.0.1:0" for tests) and returns
// the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln), nil
}

// Serve begins serving on an externally created listener — for example one
// wrapped by faultnet for fault-injection runs — and returns its address.
func (s *Server) Serve(ln net.Listener) string {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// Close stops the listener and closes all databases.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Drop live client connections so their handler goroutines unblock;
	// clients see a closed connection, as with any server restart.
	for _, c := range conns {
		c.Close()
	}
	s.stopCluster()
	s.stopMesh()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, db := range s.dbs {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
