package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/wire"
)

// connState tracks one client connection's authenticated session.
type connState struct {
	s       *Server
	user    string
	handles map[uint32]*handleState
	nextH   uint32
}

type handleState struct {
	db   *core.Database
	sess *core.Session
	path string
	// placeVer is the directory placement version this handle last passed
	// a home check against; ops re-verify only when the version moves.
	placeVer uint64
}

// handleConn runs the request loop for one connection. Reads and writes
// run under deadlines so a stalled or malicious peer (half-sent frame,
// unread responses) can never pin the handler goroutine forever. Every
// request passes admission control before dispatch, and a handler panic
// closes only this connection — never the process.
func (s *Server) handleConn(conn net.Conn) {
	st := &connState{s: s, handles: make(map[uint32]*handleState), nextH: 1}
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // closed, broken, or idle past the deadline
		}
		// Strip the optional deadline-budget envelope: the rest of the
		// loop (and every handler) sees the inner request, and responses
		// echo the inner op. A malformed envelope is a framing violation.
		budgetMs, payload, err := wire.SplitBudget(payload)
		if err != nil {
			return
		}
		budget := time.Duration(budgetMs) * time.Millisecond
		if len(payload) == 0 {
			return
		}
		op := wire.Op(payload[0])
		var resp *wire.Enc
		switch {
		case op == wire.OpAvailability:
			// Probes answer unauthenticated and even while draining, so a
			// failover client can always read the mate's state.
			resp = s.availabilityResp()
		case op == wire.OpResolve:
			// Placement resolves are routing metadata, answered like probes:
			// pre-auth and during drain, so clients can locate a database's
			// home mates even through a mate that is leaving.
			resp = s.resolveResp(wire.NewDec(payload[1:]))
		case s.draining.Load():
			// RESTRICTED: refuse new sessions outright, shed everything
			// else with a busy response that says "go to a mate".
			if op == wire.OpHello {
				resp = fail(op, errors.New("server RESTRICTED (draining)"))
			} else {
				resp = s.busyResp(op)
			}
		case op == wire.OpHello:
			// Authentication stays cheap and is never shed: a loaded
			// server still answers hello so the client can read busy
			// responses (with the index) and redirect.
			resp = st.safeDispatch(op, budget, wire.NewDec(payload[1:]))
		default:
			switch s.admission.admit(budget) {
			case admitShed:
				resp = s.busyResp(op)
			case admitDeadline:
				// The carried budget cannot survive the queue: refuse now,
				// provably before execution, so the client knows a retry
				// elsewhere is safe.
				resp = deadlineResp(op, wire.DeadlineRefused)
			default:
				s.admission.dispatched.Add(1)
				start := time.Now()
				resp = st.safeDispatch(op, budget, wire.NewDec(payload[1:]))
				s.admission.release(time.Since(start))
			}
		}
		if resp == nil {
			return // handler panicked; drop only this connection
		}
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		err = wire.WriteFrame(conn, resp.Bytes())
		resp.Release()
		if err != nil {
			return
		}
	}
}

// safeDispatch runs dispatch with panic recovery: a panicking handler is
// logged and counted, and the connection is closed by returning nil — the
// rest of the server keeps serving. The response for a half-executed
// request is unknowable, so nothing is written.
func (c *connState) safeDispatch(op wire.Op, budget time.Duration, d *wire.Dec) (resp *wire.Enc) {
	defer func() {
		if r := recover(); r != nil {
			c.s.admission.panics.Add(1)
			c.s.logf(LogHealth, "panic in %#x handler (user %q): %v", byte(op), c.user, r)
			resp = nil
		}
	}()
	// The carried budget becomes this op's context deadline: long-running
	// handlers check it cooperatively and stop working the moment the
	// caller's patience is provably spent. The clock starts here — before
	// the test hook — so injected dispatch delays consume budget exactly
	// like real ones.
	ctx := context.Background()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	if hook := c.s.testPreDispatch; hook != nil {
		hook(op, budget)
	}
	return c.dispatch(ctx, op, d)
}

// fail builds an error response.
func fail(op wire.Op, err error) *wire.Enc {
	return wire.NewResp(op, wire.StatusError).Str(err.Error())
}

// deadlineResp builds a StatusDeadlineExceeded response. stage says
// whether the op provably never ran (wire.DeadlineRefused) or was aborted
// mid-execution and may have partially taken effect (wire.DeadlineAborted)
// — the distinction the client's retry discipline hinges on.
func deadlineResp(op wire.Op, stage byte) *wire.Enc {
	return wire.NewResp(op, wire.StatusDeadlineExceeded).U8(stage)
}

func (c *connState) dispatch(ctx context.Context, op wire.Op, d *wire.Dec) *wire.Enc {
	if c.user == "" && op != wire.OpHello {
		return fail(op, errors.New("not authenticated"))
	}
	if ctx.Err() != nil {
		// Spent before the handler ran (e.g. while queued behind the
		// admission semaphore): still provably never executed.
		c.s.admission.deadlineSheds.Add(1)
		return deadlineResp(op, wire.DeadlineRefused)
	}
	var resp *wire.Enc
	var err error
	switch op {
	case wire.OpHello:
		resp, err = c.hello(d)
	case wire.OpOpenDB:
		resp, err = c.openDB(d)
	case wire.OpGetNote:
		resp, err = c.getNote(d)
	case wire.OpCreateNote:
		resp, err = c.createNote(d)
	case wire.OpUpdateNote:
		resp, err = c.updateNote(d)
	case wire.OpDeleteNote:
		resp, err = c.deleteNote(d)
	case wire.OpViewRows:
		resp, err = c.viewRows(ctx, d)
	case wire.OpSearch:
		resp, err = c.search(ctx, d)
	case wire.OpScan:
		resp, err = c.scan(ctx, d)
	case wire.OpReplicaID:
		resp, err = c.replicaID(d)
	case wire.OpSummaries:
		resp, err = c.summaries(ctx, d)
	case wire.OpFetch:
		resp, err = c.fetch(ctx, d)
	case wire.OpApply:
		resp, err = c.apply(ctx, d)
	case wire.OpMailDeposit:
		resp, err = c.mailDeposit(d)
	case wire.OpDBInfo:
		resp, err = c.dbInfo(d)
	case wire.OpPutBatch:
		resp, err = c.putBatch(ctx, d)
	case wire.OpMeshStatus:
		resp, err = c.meshStatus(d)
	case wire.OpMeshAdd:
		resp, err = c.meshAdd(d)
	case wire.OpMeshRemove:
		resp, err = c.meshRemove(d)
	default:
		err = fmt.Errorf("unknown operation %#x", byte(op))
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The handler stopped cooperatively mid-execution: the op may
			// have partially taken effect, and the client must know that.
			c.s.admission.deadlineAborts.Add(1)
			return deadlineResp(op, wire.DeadlineAborted)
		}
		var wm *wrongMateError
		if errors.As(err, &wm) {
			// Placement redirect: not an application error — the body
			// carries the home set so the client can re-route.
			return wm.resp(op)
		}
		return fail(op, err)
	}
	return resp
}

func (c *connState) hello(d *wire.Dec) (*wire.Enc, error) {
	version := d.U32()
	user := d.Str()
	secret := d.Str()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Version 2 changed the view/search row encodings (paginated bulk
	// reads), so v1 peers are refused rather than misparsed.
	if version != 2 {
		return nil, fmt.Errorf("unsupported protocol version %d", version)
	}
	if !c.s.opts.Directory.Authenticate(user, secret) {
		c.s.logf(LogSession, "failed authentication for %q", user)
		return nil, errors.New("authentication failed")
	}
	c.user = user
	c.s.logf(LogSession, "%s authenticated", user)
	return wire.NewResp(wire.OpHello, wire.StatusOK), nil
}

func (c *connState) openDB(d *wire.Dec) (*wire.Enc, error) {
	path := d.Str()
	if err := d.Err(); err != nil {
		return nil, err
	}
	key, err := cleanDBPath(path)
	if err != nil {
		return nil, err
	}
	// Placement gates the open before existence: a mate that still has the
	// file after a move (or never had it) must redirect, not serve.
	placeVer := c.s.opts.Directory.PlacementVersion()
	if err := c.s.checkHomed(key); err != nil {
		return nil, err
	}
	db, ok := c.s.DB(key)
	if !ok {
		// Only pre-opened databases are reachable remotely; opening
		// arbitrary paths would let clients create databases.
		return nil, fmt.Errorf("no database %q", path)
	}
	sess := db.Session(c.user)
	if sess.Identity().Level == acl.NoAccess {
		return nil, fmt.Errorf("%s has no access to %q", c.user, path)
	}
	h := c.nextH
	c.nextH++
	c.handles[h] = &handleState{db: db, sess: sess, path: key, placeVer: placeVer}
	replica := db.ReplicaID()
	return wire.NewResp(wire.OpOpenDB, wire.StatusOK).
		U32(h).Raw(replica[:]).Str(db.Title()), nil
}

func (c *connState) handle(d *wire.Dec) (*handleState, error) {
	h := d.U32()
	hs, ok := c.handles[h]
	if !ok {
		return nil, fmt.Errorf("bad database handle %d", h)
	}
	// Re-verify placement only when the directory moved something since
	// this handle's last check — the hot path costs one atomic load.
	if v := c.s.opts.Directory.PlacementVersion(); v != hs.placeVer {
		if err := c.s.checkHomed(hs.path); err != nil {
			return nil, err
		}
		hs.placeVer = v
	}
	return hs, nil
}

func (c *connState) getNote(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	unid := d.UNID()
	if err := d.Err(); err != nil {
		return nil, err
	}
	n, err := hs.sess.Get(unid)
	if err != nil {
		return nil, err
	}
	return wire.NewResp(wire.OpGetNote, wire.StatusOK).Note(n), nil
}

func (c *connState) createNote(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	n := d.Note()
	if err := d.Err(); err != nil {
		return nil, err
	}
	n.ID = 0
	if err := hs.sess.Create(n); err != nil {
		return nil, err
	}
	return wire.NewResp(wire.OpCreateNote, wire.StatusOK).Note(n), nil
}

func (c *connState) updateNote(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	n := d.Note()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := hs.sess.Update(n); err != nil {
		return nil, err
	}
	return wire.NewResp(wire.OpUpdateNote, wire.StatusOK).Note(n), nil
}

func (c *connState) deleteNote(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	unid := d.UNID()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := hs.sess.Delete(unid); err != nil {
		return nil, err
	}
	return wire.NewResp(wire.OpDeleteNote, wire.StatusOK), nil
}

// replicaID reports the database's replica ID, letting clients re-verify
// replica-set membership on a live connection (e.g. after a reconnect).
func (c *connState) replicaID(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	replica := hs.db.ReplicaID()
	return wire.NewResp(wire.OpReplicaID, wire.StatusOK).Raw(replica[:]), nil
}

// replAccess gates raw replication operations: the caller needs Editor
// access (servers replicate with server identities granted Editor or
// better).
func (c *connState) replAccess(hs *handleState, needWrite bool) error {
	level := hs.sess.Identity().Level
	if needWrite && level < acl.Editor {
		return fmt.Errorf("%s may not replicate changes into this database (level %v)", c.user, level)
	}
	if !needWrite && level < acl.Reader {
		return fmt.Errorf("%s may not read this database (level %v)", c.user, level)
	}
	return nil
}

// replChunk is how many notes/summaries replication handlers process
// between cooperative deadline checks: small enough that an abort lands
// within milliseconds, large enough to amortize the check away.
const replChunk = 256

func (c *connState) summaries(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	since := nsf.Timestamp(d.U64())
	formulaSrc := d.Str()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := c.replAccess(hs, false); err != nil {
		return nil, err
	}
	peer := &repl.LocalPeer{DB: hs.db}
	sums, now, err := peer.Summaries(since, formulaSrc)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := wire.NewResp(wire.OpSummaries, wire.StatusOK).U64(uint64(now)).U32(uint32(len(sums)))
	for i, s := range sums {
		if i%replChunk == replChunk-1 {
			if err := ctx.Err(); err != nil {
				resp.Release()
				return nil, err
			}
		}
		resp.Summary(s)
	}
	return resp, nil
}

func (c *connState) fetch(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	count := d.U32()
	// Clamp the count-sized preallocation to what the request could hold
	// (16 bytes per UNID); a corrupt count must not demand gigabytes.
	unids := make([]nsf.UNID, 0, d.Cap(count, 16))
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		unids = append(unids, d.UNID())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := c.replAccess(hs, false); err != nil {
		return nil, err
	}
	peer := &repl.LocalPeer{DB: hs.db}
	// Fetch in chunks with a deadline check between them, so a huge pull
	// from an abandoned replicator stops instead of running to the end.
	var notes []*nsf.Note
	for len(unids) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := unids
		if len(chunk) > replChunk {
			chunk = chunk[:replChunk]
		}
		unids = unids[len(chunk):]
		got, err := peer.Fetch(chunk)
		if err != nil {
			return nil, err
		}
		notes = append(notes, got...)
	}
	resp := wire.NewResp(wire.OpFetch, wire.StatusOK).U32(uint32(len(notes)))
	for _, n := range notes {
		resp.Note(n)
	}
	return resp, nil
}

func (c *connState) apply(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	count := d.U32()
	notes := make([]*nsf.Note, 0, d.Cap(count, 2))
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		notes = append(notes, d.Note())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := c.replAccess(hs, true); err != nil {
		return nil, err
	}
	peer := &repl.LocalPeer{DB: hs.db, Opts: repl.ApplyOptions{FieldMerge: c.s.opts.FieldMerge}}
	// Apply in chunks with deadline checks between them. A mid-batch abort
	// leaves a prefix applied — safe, because replication applies are
	// idempotent by the OID rules, and the aborted status tells the peer
	// the batch did not complete.
	var stats repl.ApplyStats
	for len(notes) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := notes
		if len(chunk) > replChunk {
			chunk = chunk[:replChunk]
		}
		notes = notes[len(chunk):]
		st, err := peer.Apply(chunk)
		if err != nil {
			return nil, err
		}
		stats.Add(st)
	}
	return wire.NewResp(wire.OpApply, wire.StatusOK).ApplyStats(stats), nil
}

func (c *connState) dbInfo(d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	stats := hs.db.Stats()
	views := hs.db.ViewNames()
	resp := wire.NewResp(wire.OpDBInfo, wire.StatusOK).
		Str(hs.db.Title()).
		U32(uint32(stats.Notes)).
		U32(uint32(stats.Pages)).
		U32(uint32(len(views)))
	for _, v := range views {
		resp.Str(v)
	}
	return resp, nil
}

// putBatch stores a pipelined batch of documents through one admission
// slot, deduplicating against the session's durable cursor so a batch
// re-sent after a reconnect applies exactly once. A partial failure is
// reported as StatusOK with ok=0 so the client still learns the cursor
// (how far the batch got) alongside the error.
func (c *connState) putBatch(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	sessKey := d.Str()
	base := d.U64()
	count := int(d.U32())
	notes := make([]*nsf.Note, 0, d.Cap(uint32(count), 2))
	for i := 0; i < count && d.Err() == nil; i++ {
		notes = append(notes, d.Note())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if base == 0 || base+uint64(count) < base {
		return nil, fmt.Errorf("bad batch sequence base %d count %d", base, count)
	}
	// Scope the cursor to (user, client key, database) so neither another
	// user nor another database can collide with this session's sequence.
	key := c.user + "\x00" + sessKey + "\x00" + hs.path
	cursor := c.s.putCursor(key)
	skip := 0
	for skip < len(notes) && base+uint64(skip) <= cursor {
		skip++
	}
	fresh := notes[skip:]
	for _, n := range fresh {
		n.ID = 0 // note IDs are assigned by this server's store
	}
	applied, aerr := hs.sess.PutBatchCtx(ctx, fresh)
	if skip+applied > 0 {
		if last := base + uint64(skip+applied) - 1; last > cursor {
			cursor = last
			c.s.advancePutCursor(key, last)
		}
	}
	if aerr != nil && errors.Is(aerr, context.DeadlineExceeded) {
		// Budget spent mid-batch: the applied prefix is durable and the
		// cursor above already covers it, so the client's re-sent batch
		// (same key and base) dedups exactly — the aborted status merely
		// tells it this attempt did not finish.
		return nil, aerr
	}
	resp := wire.NewResp(wire.OpPutBatch, wire.StatusOK).
		U64(cursor).U32(uint32(applied)).U32(uint32(skip))
	if aerr != nil {
		resp.U8(0).Str(aerr.Error())
	} else {
		resp.U8(1)
	}
	return resp, nil
}

func (c *connState) mailDeposit(d *wire.Dec) (*wire.Enc, error) {
	n := d.Note()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := c.s.router.Deposit(n); err != nil {
		return nil, err
	}
	return wire.NewResp(wire.OpMailDeposit, wire.StatusOK), nil
}

// meshFor returns the running mesh scheduler or a clean error when the
// mesh task is not enabled on this server.
func (c *connState) meshFor() (*mesh.Mesh, error) {
	m := c.s.Mesh()
	if m == nil {
		return nil, errors.New("mesh not enabled on this server")
	}
	return m, nil
}

func (c *connState) meshStatus(d *wire.Dec) (*wire.Enc, error) {
	if err := d.Err(); err != nil {
		return nil, err
	}
	m, err := c.meshFor()
	if err != nil {
		return nil, err
	}
	sts := m.Status()
	resp := wire.NewResp(wire.OpMeshStatus, wire.StatusOK).U32(uint32(len(sts)))
	for _, st := range sts {
		resp.MeshLinkStatus(st)
	}
	return resp, nil
}

func (c *connState) meshAdd(d *wire.Dec) (*wire.Enc, error) {
	l := d.MeshLink()
	if err := d.Err(); err != nil {
		return nil, err
	}
	m, err := c.meshFor()
	if err != nil {
		return nil, err
	}
	if err := m.Add(l); err != nil {
		return nil, err
	}
	c.s.logf(LogMesh, "link %s added by %s", l.Name, c.user)
	return wire.NewResp(wire.OpMeshAdd, wire.StatusOK), nil
}

func (c *connState) meshRemove(d *wire.Dec) (*wire.Enc, error) {
	name := d.Str()
	if err := d.Err(); err != nil {
		return nil, err
	}
	m, err := c.meshFor()
	if err != nil {
		return nil, err
	}
	if err := m.Remove(name); err != nil {
		return nil, err
	}
	c.s.logf(LogMesh, "link %s removed by %s", name, c.user)
	return wire.NewResp(wire.OpMeshRemove, wire.StatusOK), nil
}
