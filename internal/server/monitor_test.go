package server

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
)

func TestMonitorCountsAndLogsThresholdEvents(t *testing.T) {
	tn := newTestNet(t)
	tn.hub.EnableMonitor(10)
	db, err := tn.hub.OpenDB("apps/watched.nsf", core.Options{Title: "watched"})
	if err != nil {
		t.Fatal(err)
	}
	sess := db.Session("admin")
	for i := 0; i < 25; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	// The monitor consumes the changefeed asynchronously.
	db.Refresh()
	if got := tn.hub.ActivityCounts()["apps/watched.nsf"]; got != 25 {
		t.Errorf("activity count = %d, want 25", got)
	}
	// 25 changes at threshold 10 -> two threshold events in the log.
	logDB, ok := tn.hub.DB(LogPath)
	if !ok {
		t.Fatal("log.nsf missing")
	}
	waitFor(t, "monitor threshold events", func() bool {
		events := 0
		logDB.ScanAll(func(n *nsf.Note) bool {
			if n.Text("Kind") == LogMonitor {
				events++
			}
			return true
		})
		return events == 2
	})
	report := tn.hub.MonitorReport()
	found := false
	for _, line := range report {
		if strings.Contains(line, "apps/watched.nsf: 25 changes") && strings.Contains(line, "feed usn=") {
			found = true
		}
	}
	if !found {
		t.Errorf("monitor report = %q", report)
	}
}

func TestMonitorSkipsServerPrivateDBs(t *testing.T) {
	tn := newTestNet(t)
	tn.hub.EnableMonitor(1)
	// Force log traffic; the monitor must not observe log.nsf (feedback loop).
	tn.hub.LogEvent(LogAdmin, "hello", nil)
	counts := tn.hub.ActivityCounts()
	for _, private := range []string{LogPath, CatalogPath, "mail.box"} {
		if _, ok := counts[private]; ok {
			t.Errorf("monitor hooked server-private database %s", private)
		}
	}
}

func TestCatalogCarriesFeedCounters(t *testing.T) {
	tn := newTestNet(t)
	db, err := tn.hub.OpenDB("apps/feedstats.nsf", core.Options{Title: "fs"})
	if err != nil {
		t.Fatal(err)
	}
	sess := db.Session("admin")
	for i := 0; i < 5; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", "x")
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tn.hub.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	cat, _ := tn.hub.DB(CatalogPath)
	var usn float64
	seen := false
	cat.ScanAll(func(n *nsf.Note) bool {
		if n.Text("Form") == "Catalog" && n.Text("Path") == "apps/feedstats.nsf" {
			usn = n.Number("ChangeUSN")
			seen = n.Has("ChangeMaxLag") && n.Has("ChangeResyncs") && n.Has("ChangeDroppedSubs")
		}
		return true
	})
	if !seen {
		t.Fatal("catalog doc missing feed counters")
	}
	if usn < 5 {
		t.Errorf("ChangeUSN = %v, want >= 5", usn)
	}
}
