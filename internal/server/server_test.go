package server

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/view"
	"repro/internal/wire"
)

// testNet is a two-server deployment sharing one directory.
type testNet struct {
	d          *dir.Directory
	hub, spoke *Server
	hubAddr    string
	spokeAddr  string
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw", MailFile: "mail/ada.nsf"})
	d.AddUser(dir.User{Name: "bob", Secret: "bob-pw", MailFile: "mail/bob.nsf", MailServer: "spoke"})
	d.AddUser(dir.User{Name: "eve", Secret: "eve-pw"})
	d.AddUser(dir.User{Name: "hub", Secret: "hub-secret"})
	d.AddUser(dir.User{Name: "spoke", Secret: "spoke-secret"})

	hub, err := New(Options{
		Name: "hub", DataDir: filepath.Join(t.TempDir(), "hub"),
		Directory: d, PeerSecret: "hub-secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	spoke, err := New(Options{
		Name: "spoke", DataDir: filepath.Join(t.TempDir(), "spoke"),
		Directory: d, PeerSecret: "spoke-secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spoke.Close() })

	hubAddr, err := hub.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	spokeAddr, err := spoke.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub.opts.Peers = map[string]string{"spoke": spokeAddr}
	spoke.opts.Peers = map[string]string{"hub": hubAddr}
	return &testNet{d: d, hub: hub, spoke: spoke, hubAddr: hubAddr, spokeAddr: spokeAddr}
}

func TestAuthentication(t *testing.T) {
	net := newTestNet(t)
	if _, err := wire.Dial(net.hubAddr, "ada", "wrong"); err == nil {
		t.Error("bad secret accepted")
	}
	if _, err := wire.Dial(net.hubAddr, "ghost", "x"); err == nil {
		t.Error("unknown user accepted")
	}
	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatalf("valid login failed: %v", err)
	}
	c.Close()
}

func TestRemoteCRUD(t *testing.T) {
	net := newTestNet(t)
	db, err := net.hub.OpenDB("apps/crud.nsf", core.Options{Title: "crud"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)

	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/crud.nsf")
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	if rdb.Title() != "crud" {
		t.Errorf("title = %q", rdb.Title())
	}
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "over the wire")
	if err := rdb.Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if n.ID == 0 || n.OID.Seq != 1 {
		t.Errorf("returned note not stamped: id=%d seq=%d", n.ID, n.OID.Seq)
	}
	got, err := rdb.Get(n.OID.UNID)
	if err != nil || got.Text("Subject") != "over the wire" {
		t.Fatalf("Get: %v %v", got, err)
	}
	got.SetText("Subject", "updated remotely")
	if err := rdb.Update(got); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got.OID.Seq != 2 {
		t.Errorf("seq after update = %d", got.OID.Seq)
	}
	if err := rdb.Delete(n.OID.UNID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := rdb.Get(n.OID.UNID); err == nil {
		t.Error("deleted note still readable")
	}
}

func TestOpenDBRequiresAccess(t *testing.T) {
	net := newTestNet(t)
	db, _ := net.hub.OpenDB("apps/private.nsf", core.Options{Title: "private"})
	db.ACL().SetDefault(acl.NoAccess)
	db.ACL().Set("ada", acl.Reader)
	c, _ := wire.Dial(net.hubAddr, "eve", "eve-pw")
	defer c.Close()
	if _, err := c.OpenDB("apps/private.nsf"); err == nil {
		t.Error("no-access user opened database")
	}
	if _, err := c.OpenDB("apps/nonexistent.nsf"); err == nil {
		t.Error("nonexistent database opened")
	}
	if _, err := c.OpenDB("../../etc/passwd"); err == nil {
		t.Error("path traversal accepted")
	}
}

func TestRemoteViewAndSearch(t *testing.T) {
	net := newTestNet(t)
	db, _ := net.hub.OpenDB("apps/v.nsf", core.Options{Title: "v"})
	db.ACL().Set("ada", acl.Editor)
	def, _ := view.NewDefinition("by subject", "SELECT @All",
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err := db.AddView(nil, def); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	for _, subj := range []string{"charlie", "alpha", "bravo"} {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", subj)
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := wire.Dial(net.hubAddr, "ada", "ada-pw")
	defer c.Close()
	rdb, err := c.OpenDB("apps/v.nsf")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rdb.ViewRows("by subject")
	if err != nil {
		t.Fatalf("ViewRows: %v", err)
	}
	var subjects []string
	for _, r := range rows {
		if len(r.Columns) > 0 {
			subjects = append(subjects, r.Columns[0])
		}
	}
	if strings.Join(subjects, ",") != "alpha,bravo,charlie" {
		t.Errorf("view order = %v", subjects)
	}
	hits, err := rdb.Search("bravo")
	if err != nil || len(hits) != 1 {
		t.Fatalf("Search: %d hits, %v", len(hits), err)
	}
	if _, err := rdb.ViewRows("missing view"); err == nil {
		t.Error("missing view did not error")
	}
	info, err := rdb.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Title != "v" || info.Notes < 3 || len(info.Views) != 1 || info.Views[0] != "by subject" {
		t.Errorf("Info = %+v", info)
	}
}

func TestServerToServerReplication(t *testing.T) {
	net := newTestNet(t)
	replica := nsf.NewReplicaID()
	hubDB, err := net.hub.OpenDB("apps/shared.nsf", core.Options{Title: "shared", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	spokeDB, err := net.spoke.OpenDB("apps/shared.nsf", core.Options{Title: "shared", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	// Server identities need Editor to apply replicated changes.
	hubDB.ACL().Set("spoke", acl.Editor)
	spokeDB.ACL().Set("hub", acl.Editor)

	s := hubDB.Session("admin")
	for i := 0; i < 10; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("hub doc %d", i))
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	s2 := spokeDB.Session("admin")
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "spoke doc")
	if err := s2.Create(n); err != nil {
		t.Fatal(err)
	}

	stats, err := net.hub.ReplicateWith("spoke", net.spokeAddr, "apps/shared.nsf", repl.Options{})
	if err != nil {
		t.Fatalf("ReplicateWith: %v", err)
	}
	if stats.Pull.Added != 1 || stats.Push.Added != 10 {
		t.Errorf("stats = %v", stats)
	}
	if spokeDB.Count() < 11 {
		t.Errorf("spoke has %d notes", spokeDB.Count())
	}
	// Incremental: a second session moves nothing.
	stats, err = net.hub.ReplicateWith("spoke", net.spokeAddr, "apps/shared.nsf", repl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NotesSent != 0 || stats.NotesFetched != 0 {
		t.Errorf("idle wire sync moved notes: %v", stats)
	}
}

func TestReplicationRequiresEditor(t *testing.T) {
	net := newTestNet(t)
	replica := nsf.NewReplicaID()
	db, _ := net.hub.OpenDB("apps/guarded.nsf", core.Options{ReplicaID: replica})
	db.ACL().SetDefault(acl.NoAccess)
	db.ACL().Set("ada", acl.Reader)
	c, _ := wire.Dial(net.hubAddr, "ada", "ada-pw")
	defer c.Close()
	rdb, err := c.OpenDB("apps/guarded.nsf")
	if err != nil {
		t.Fatal(err)
	}
	// Reader can pull summaries but not apply.
	if _, _, err := rdb.Summaries(0, ""); err != nil {
		t.Errorf("reader Summaries: %v", err)
	}
	note := nsf.NewNote(nsf.ClassDocument)
	note.OID.Seq = 1
	note.OID.SeqTime = 1
	note.SetText("Subject", "injected")
	if _, err := rdb.Apply([]*nsf.Note{note}); err == nil {
		t.Error("reader applied notes")
	}
}

func TestCrossServerMail(t *testing.T) {
	net := newTestNet(t)
	// ada (on hub) mails bob (on spoke).
	c, _ := wire.Dial(net.hubAddr, "ada", "ada-pw")
	defer c.Close()
	msg := nsf.NewNote(nsf.ClassDocument)
	msg.SetText(router.ItemSendTo, "ada", "bob")
	msg.SetText(router.ItemFrom, "ada")
	msg.SetText(router.ItemSubject, "cross-server hello")
	if err := c.MailDeposit(msg); err != nil {
		t.Fatalf("MailDeposit: %v", err)
	}
	// Route at hub: delivers ada locally, forwards bob's copy to spoke.
	st, err := net.hub.Router().RouteOnce()
	if err != nil {
		t.Fatalf("hub RouteOnce: %v", err)
	}
	if st.Delivered != 1 || st.Forwarded != 1 {
		t.Errorf("hub stats = %+v", st)
	}
	// Route at spoke: delivers bob.
	st, err = net.spoke.Router().RouteOnce()
	if err != nil {
		t.Fatalf("spoke RouteOnce: %v", err)
	}
	if st.Delivered != 1 {
		t.Errorf("spoke stats = %+v", st)
	}
	adaMail, ok := net.hub.DB("mail/ada.nsf")
	if !ok || adaMail.Count() != 1 {
		t.Error("ada's mail not delivered on hub")
	}
	bobMail, ok := net.spoke.DB("mail/bob.nsf")
	if !ok || bobMail.Count() != 1 {
		t.Error("bob's mail not delivered on spoke")
	}
	var subject string
	bobMail.ScanAll(func(n *nsf.Note) bool {
		subject = n.Text(router.ItemSubject)
		return false
	})
	if subject != "cross-server hello" {
		t.Errorf("bob received %q", subject)
	}
}

func TestUnauthenticatedOpsRejected(t *testing.T) {
	tn := newTestNet(t)
	// Poke the protocol directly: an op before hello must fail.
	conn, err := net.Dial("tcp", tn.hubAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.NewEnc(wire.OpOpenDB).Str("mail.box")
	if err := wire.WriteFrame(conn, req.Bytes()); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) < 2 || payload[1] != wire.StatusError {
		t.Error("pre-auth op did not error")
	}
}

func TestPathValidation(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"mail/ada.nsf", true},
		{"a.nsf", true},
		{"../escape.nsf", false},
		{"/abs.nsf", false},
		{"a/../../b.nsf", false},
		{"", false},
		{".", false},
	}
	for _, tc := range cases {
		_, err := cleanDBPath(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("cleanDBPath(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
	}
}

func TestErrorsCrossTheWireIntact(t *testing.T) {
	net := newTestNet(t)
	db, _ := net.hub.OpenDB("apps/errs.nsf", core.Options{})
	db.ACL().Set("ada", acl.Editor)
	c, _ := wire.Dial(net.hubAddr, "ada", "ada-pw")
	defer c.Close()
	rdb, _ := c.OpenDB("apps/errs.nsf")
	if _, err := rdb.Get(nsf.NewUNID()); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("Get of missing note: %v", err)
	}
	if _, err := rdb.Search("anything"); err == nil {
		t.Error("search without FT index succeeded")
	}
}
