package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on a fresh listener (optionally
// fault-wrapped) and echoes bytes back until the conn dies.
func echoServer(t *testing.T, wrap func(net.Listener) net.Listener) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	serve := net.Listener(ln)
	if wrap != nil {
		serve = wrap(ln)
	}
	go func() {
		for {
			c, err := serve.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestPassThroughWhenQuiet(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 1}) // all probabilities zero
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello over a clean link")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo = %q", got)
	}
	if st := fn.Stats(); st.Severs+st.Drops+st.Truncs != 0 {
		t.Errorf("quiet plan injected faults: %+v", st)
	}
}

func TestSeverAfterBytesKillsMidStream(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 2, SeverAfterBytes: 64})
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 48)
	var ioErr error
	for i := 0; i < 10 && ioErr == nil; i++ {
		_, ioErr = c.Write(buf)
	}
	if ioErr == nil {
		t.Fatal("connection survived well past SeverAfterBytes")
	}
	if !errors.Is(ioErr, ErrInjected) {
		t.Fatalf("error = %v, want ErrInjected", ioErr)
	}
	if st := fn.Stats(); st.Severs != 1 {
		t.Errorf("severs = %d, want 1", st.Severs)
	}
}

func TestInjectedErrorIsNetOpError(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 3, SeverProb: 1})
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Write([]byte("doomed"))
	var op *net.OpError
	if !errors.As(err, &op) {
		t.Fatalf("injected error %T does not unwrap to *net.OpError", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not match ErrInjected", err)
	}
}

func TestDropRefusesConnections(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 4, DropProb: 1})
	if _, err := fn.Dial("tcp", addr); err == nil {
		t.Fatal("drop plan allowed a dial")
	}
	if st := fn.Stats(); st.Drops != 1 {
		t.Errorf("drops = %d", st.Drops)
	}
}

func TestTruncationDeliversPrefixThenSevers(t *testing.T) {
	// Server side records what it received before the sever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	recv := make(chan int, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		n, _ := io.Copy(io.Discard, c)
		recv <- int(n)
	}()
	fn := New(Plan{Seed: 5, TruncProb: 1})
	c, err := fn.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 1000)
	n, err := c.Write(payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("truncating write err = %v", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("truncated write reported %d bytes of %d", n, len(payload))
	}
	select {
	case got := <-recv:
		if got != n {
			t.Errorf("server saw %d bytes, client sent %d", got, n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the sever")
	}
}

func TestDeterministicSchedulePerSeed(t *testing.T) {
	// The same seed must produce the same per-connection fate sequence.
	run := func(seed int64) []bool {
		addr := echoServer(t, nil)
		fn := New(Plan{Seed: seed, SeverProb: 0.3})
		var fates []bool
		for i := 0; i < 20; i++ {
			c, err := fn.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			_, err = c.Write([]byte("0123456789"))
			fates = append(fates, err != nil)
			c.Close()
		}
		return fates
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at conn %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules (suspicious)")
	}
}

func TestDisableStopsInjection(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 6, SeverProb: 1})
	fn.Disable()
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("safe")); err != nil {
		t.Fatalf("disabled net still injected: %v", err)
	}
	fn.Enable()
	if _, err := c.Write([]byte("doomed")); err == nil {
		t.Fatal("re-enabled net did not inject")
	}
}

func TestListenerDropKeepsAccepting(t *testing.T) {
	fn := New(Plan{Seed: 7, DropProb: 0.5})
	addr := echoServer(t, fn.Listener)
	// Even with a 50% accept-drop rate the server must keep serving:
	// dial until one connection survives a round trip.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			continue
		}
		c.SetDeadline(time.Now().Add(time.Second))
		c.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err == nil {
			c.Close()
			return // success
		}
		c.Close()
	}
	t.Fatal("no connection ever survived the dropping listener")
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=9, drop=0.25, sever=0.5, trunc=0.125, delay=1, maxdelay=20ms, afterbytes=4096")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 9, DropProb: 0.25, SeverProb: 0.5, TruncProb: 0.125,
		DelayProb: 1, MaxDelay: 20 * time.Millisecond, SeverAfterBytes: 4096}
	if p != want {
		t.Errorf("ParsePlan = %+v, want %+v", p, want)
	}
	if _, err := ParsePlan("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParsePlan("seed"); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := ParsePlan("seed=abc"); err == nil {
		t.Error("bad int accepted")
	}
	if p, err := ParsePlan(""); err != nil || p != (Plan{}) {
		t.Errorf("empty spec: %+v, %v", p, err)
	}
}
