// Package faultnet injects deterministic network faults — connection
// drops, I/O delays, byte truncation, and mid-stream severs — into
// net.Conn traffic. It exists to prove the replication stack's claim of
// restartability over flaky links: tests (and dominod via its -fault
// flag) wrap dialers and listeners in a seeded Net and assert that
// sessions severed at arbitrary byte offsets still converge on retry.
//
// Determinism: every connection draws its fault schedule from a
// per-connection PRNG seeded by (plan seed, connection ordinal), so a
// given seed reproduces the same fault sequence per connection
// regardless of goroutine interleaving across connections.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by reads and writes that a Net
// decided to fail. It unwraps from the *net.OpError the fault surfaces
// as, so callers can both treat it as a generic network error and test
// for injection explicitly.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan parameterizes the fault schedule. Probabilities are per event:
// DropProb per connection attempt, the others per Read/Write call.
type Plan struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// DropProb is the probability a new connection is refused outright.
	DropProb float64
	// SeverProb is the per-I/O probability of killing the connection
	// before the operation runs (both directions see it die).
	SeverProb float64
	// TruncProb is the per-write probability of transmitting only a
	// prefix of the buffer and then severing — the classic dropped-WAN
	// mid-frame failure.
	TruncProb float64
	// DelayProb is the per-I/O probability of sleeping up to MaxDelay
	// before the operation.
	DelayProb float64
	// MaxDelay bounds injected delays (default 10ms when DelayProb > 0).
	MaxDelay time.Duration
	// SeverAfterBytes, when > 0, severs each connection once its
	// combined read+write volume exceeds this many bytes. It guarantees
	// a mid-transfer failure regardless of the probabilistic knobs.
	SeverAfterBytes int64
	// Latency, when > 0, injects a fixed propagation delay before each
	// write burst, emulating link RTT deterministically (unlike DelayProb,
	// which is probabilistic jitter). Writes less than 1ms apart count as
	// one burst and pay the latency once — a frame written as a header
	// write plus a payload write is still one packet on the emulated link.
	// Applying it on both directions of a connection pair yields
	// RTT = 2 x Latency for a request/response exchange.
	Latency time.Duration
	// StallProb is the per-I/O probability the connection stalls: the
	// operation — and every later one on the same connection — hangs
	// without moving a byte until the connection's deadline expires
	// (returning a Timeout() net.Error, like a real unanswered socket) or
	// the connection is closed. Unlike a sever, the peer looks alive at
	// the TCP layer; this is the failure mode that deadline budgets and
	// hedged reads exist for, where a plain retry loop just hangs.
	StallProb float64
	// SlowPeer, when > 0, sleeps this long before every read and write —
	// an overloaded-but-alive peer that answers everything, late. A
	// deadline set on the connection still fires during the sleep.
	SlowPeer time.Duration
}

// ParsePlan parses a comma-separated spec like
// "seed=7,drop=0.1,sever=0.02,trunc=0.01,delay=0.2,maxdelay=20ms,afterbytes=4096".
// Unknown keys are errors; omitted keys keep their zero values.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("faultnet: bad field %q (want key=value)", field)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "seed":
			p.Seed, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		case "drop":
			p.DropProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "sever":
			p.SeverProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "trunc":
			p.TruncProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "delay":
			p.DelayProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "maxdelay":
			p.MaxDelay, err = time.ParseDuration(strings.TrimSpace(v))
		case "afterbytes":
			p.SeverAfterBytes, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		case "latency":
			p.Latency, err = time.ParseDuration(strings.TrimSpace(v))
		case "stall":
			p.StallProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "slowpeer":
			p.SlowPeer, err = time.ParseDuration(strings.TrimSpace(v))
		default:
			return p, fmt.Errorf("faultnet: unknown field %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("faultnet: field %q: %w", field, err)
		}
	}
	return p, nil
}

// Stats counts injected faults, for test assertions that the schedule
// actually fired.
type Stats struct {
	Drops     int64 // connections refused at establishment
	Severs    int64 // connections killed mid-stream
	Truncs    int64 // writes cut short then severed
	Delays    int64 // delays injected
	Latencies int64 // fixed per-burst latency sleeps injected
	Stalls    int64 // I/O calls hung by a stalled connection
	SlowIOs   int64 // I/O calls slowed by the SlowPeer knob
	Conns     int64 // connections wrapped
	IOBytes   int64 // bytes successfully transferred through wrapped conns
	Disabled  bool  // whether injection is currently off
}

// Net applies one Plan to any number of connections. The zero value is
// unusable; construct with New.
type Net struct {
	plan    Plan
	mu      sync.Mutex
	rng     *rand.Rand // connection-establishment decisions only
	ordinal int64
	off     atomic.Bool

	drops     atomic.Int64
	severs    atomic.Int64
	truncs    atomic.Int64
	delays    atomic.Int64
	latencies atomic.Int64
	stalls    atomic.Int64
	slowIOs   atomic.Int64
	conns     atomic.Int64
	bytes     atomic.Int64
}

// New builds a Net from a plan.
func New(plan Plan) *Net {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 10 * time.Millisecond
	}
	return &Net{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Disable turns off all injection (existing and future connections pass
// traffic through untouched). Tests use it to let a final, clean
// replication pass certify convergence after a faulty run.
func (f *Net) Disable() { f.off.Store(true) }

// Enable re-arms injection after Disable.
func (f *Net) Enable() { f.off.Store(false) }

// Stats returns a snapshot of the fault counters.
func (f *Net) Stats() Stats {
	return Stats{
		Drops:     f.drops.Load(),
		Severs:    f.severs.Load(),
		Truncs:    f.truncs.Load(),
		Delays:    f.delays.Load(),
		Latencies: f.latencies.Load(),
		Stalls:    f.stalls.Load(),
		SlowIOs:   f.slowIOs.Load(),
		Conns:     f.conns.Load(),
		IOBytes:   f.bytes.Load(),
		Disabled:  f.off.Load(),
	}
}

// injectedErr wraps ErrInjected in a *net.OpError so generic network
// error handling (and retry classification) treats it like any broken
// connection.
func injectedErr(op string) error {
	return &net.OpError{Op: op, Net: "faultnet", Err: ErrInjected}
}

// Dial establishes a connection through the fault plan.
func (f *Net) Dial(network, addr string) (net.Conn, error) {
	f.mu.Lock()
	drop := !f.off.Load() && f.rng.Float64() < f.plan.DropProb
	f.mu.Unlock()
	if drop {
		f.drops.Add(1)
		return nil, injectedErr("dial")
	}
	c, err := net.DialTimeout(network, addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return f.Wrap(c), nil
}

// Wrap subjects an existing connection to the fault plan.
func (f *Net) Wrap(c net.Conn) net.Conn {
	f.conns.Add(1)
	f.mu.Lock()
	ord := f.ordinal
	f.ordinal++
	f.mu.Unlock()
	// Independent per-connection stream: deterministic per (seed, ordinal)
	// even when connections interleave.
	seed := f.plan.Seed*1_000_003 + ord
	return &conn{
		Conn:    c,
		net:     f,
		rng:     rand.New(rand.NewSource(seed)),
		closeCh: make(chan struct{}),
	}
}

// Listener wraps a listener so accepted connections pass through the
// fault plan. Connection drops apply at accept time.
func (f *Net) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: f}
}

type listener struct {
	net.Listener
	net *Net
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.net.mu.Lock()
		drop := !l.net.off.Load() && l.net.rng.Float64() < l.net.plan.DropProb
		l.net.mu.Unlock()
		if drop {
			l.net.drops.Add(1)
			c.Close()
			continue // drop this client, keep listening
		}
		return l.net.Wrap(c), nil
	}
}

// conn is a net.Conn under a fault schedule. The rng is guarded by mu:
// a Client may read and write concurrently, and determinism within one
// connection only requires a consistent draw order for the scheduler's
// serialized request/response pattern.
type conn struct {
	net.Conn
	net *Net

	mu      sync.Mutex
	rng     *rand.Rand
	moved   int64
	severed bool
	stalled bool
	// readDL/writeDL mirror the deadlines set on the connection, so a
	// stalled or slowed operation knows when to give up with a timeout
	// (the underlying socket's deadline cannot interrupt our sleep).
	readDL, writeDL time.Time
	// lastWrite is when the previous Write ran, for latency burst
	// coalescing (guarded by mu).
	lastWrite time.Time

	closeOnce sync.Once
	closeCh   chan struct{}
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *conn) deadline(isWrite bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if isWrite {
		return c.writeDL
	}
	return c.readDL
}

// stallError is what a stalled (or deadline-interrupted slow) operation
// returns once the connection's deadline passes. Timeout() is true, like
// a real socket whose peer accepted the bytes but never answered.
type stallError struct{}

func (stallError) Error() string   { return "faultnet: stalled i/o timeout" }
func (stallError) Timeout() bool   { return true }
func (stallError) Temporary() bool { return true }

func stallTimeoutErr(op string) error {
	return &net.OpError{Op: op, Net: "faultnet", Err: stallError{}}
}

// stall hangs the calling operation until the connection's deadline
// passes (timeout error) or the connection is closed (injected error),
// polling the mirrored deadline in short steps so a deadline set after
// the stall began is still honored promptly.
func (c *conn) stall(isWrite bool) error {
	c.net.stalls.Add(1)
	op := "read"
	if isWrite {
		op = "write"
	}
	for {
		wait := 25 * time.Millisecond
		if dl := c.deadline(isWrite); !dl.IsZero() {
			rem := time.Until(dl)
			if rem <= 0 {
				return stallTimeoutErr(op)
			}
			if rem < wait {
				wait = rem
			}
		}
		t := time.NewTimer(wait)
		select {
		case <-c.closeCh:
			t.Stop()
			return injectedErr(op)
		case <-t.C:
		}
	}
}

// slow applies the SlowPeer delay to one operation. If the connection's
// deadline lands inside the delay, the sleep stops there and the
// operation times out — a slow peer cannot suspend the caller's clock.
func (c *conn) slow(isWrite bool) error {
	d := c.net.plan.SlowPeer
	if d <= 0 || c.net.off.Load() {
		return nil
	}
	c.net.slowIOs.Add(1)
	timedOut := false
	if dl := c.deadline(isWrite); !dl.IsZero() {
		if rem := time.Until(dl); rem < d {
			d, timedOut = rem, true
		}
	}
	if d > 0 {
		t := time.NewTimer(d)
		select {
		case <-c.closeCh:
			t.Stop()
			op := "read"
			if isWrite {
				op = "write"
			}
			return injectedErr(op)
		case <-t.C:
		}
	}
	if timedOut {
		op := "read"
		if isWrite {
			op = "write"
		}
		return stallTimeoutErr(op)
	}
	return nil
}

// decide draws the fate of one I/O operation: a delay to apply first,
// whether to sever, and whether to stall (sticky: once a connection
// stalls, every later operation stalls too). truncAt >= 0 additionally
// truncates a write of size n to truncAt bytes before severing.
func (c *conn) decide(n int, isWrite bool) (delay time.Duration, sever, stall bool, truncAt int) {
	truncAt = -1
	if c.net.off.Load() {
		return 0, false, false, -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return 0, true, false, -1
	}
	if c.stalled {
		return 0, false, true, -1
	}
	p := &c.net.plan
	if p.DelayProb > 0 && c.rng.Float64() < p.DelayProb {
		delay = time.Duration(c.rng.Int63n(int64(p.MaxDelay) + 1))
	}
	if p.SeverAfterBytes > 0 && c.moved >= p.SeverAfterBytes {
		c.severed = true
		return delay, true, false, -1
	}
	if c.rng.Float64() < p.SeverProb {
		c.severed = true
		return delay, true, false, -1
	}
	if p.StallProb > 0 && c.rng.Float64() < p.StallProb {
		c.stalled = true
		return delay, false, true, -1
	}
	if isWrite && n > 1 && c.rng.Float64() < p.TruncProb {
		c.severed = true
		return delay, true, false, c.rng.Intn(n-1) + 1 // at least 1, at most n-1 bytes
	}
	return delay, false, false, -1
}

func (c *conn) Read(b []byte) (int, error) {
	if err := c.slow(false); err != nil {
		return 0, err
	}
	delay, sever, stall, _ := c.decide(len(b), false)
	if delay > 0 {
		c.net.delays.Add(1)
		time.Sleep(delay)
	}
	if sever {
		c.net.severs.Add(1)
		c.Conn.Close()
		return 0, injectedErr("read")
	}
	if stall {
		return 0, c.stall(false)
	}
	n, err := c.Conn.Read(b)
	c.account(n)
	return n, err
}

// latencyBurstGap is the inter-write gap above which a write starts a new
// burst and pays the plan's fixed Latency. Writes closer together than
// this — e.g. a frame's header write immediately followed by its payload
// write — ride the same emulated packet.
const latencyBurstGap = time.Millisecond

func (c *conn) Write(b []byte) (int, error) {
	if lat := c.net.plan.Latency; lat > 0 && !c.net.off.Load() {
		now := time.Now()
		c.mu.Lock()
		newBurst := c.lastWrite.IsZero() || now.Sub(c.lastWrite) > latencyBurstGap
		c.mu.Unlock()
		if newBurst {
			c.net.latencies.Add(1)
			time.Sleep(lat)
		}
		defer func() {
			c.mu.Lock()
			c.lastWrite = time.Now()
			c.mu.Unlock()
		}()
	}
	if err := c.slow(true); err != nil {
		return 0, err
	}
	delay, sever, stall, truncAt := c.decide(len(b), true)
	if delay > 0 {
		c.net.delays.Add(1)
		time.Sleep(delay)
	}
	if sever && truncAt < 0 {
		c.net.severs.Add(1)
		c.Conn.Close()
		return 0, injectedErr("write")
	}
	if stall {
		return 0, c.stall(true)
	}
	if truncAt >= 0 {
		c.net.truncs.Add(1)
		n, _ := c.Conn.Write(b[:truncAt])
		c.account(n)
		c.Conn.Close()
		return n, injectedErr("write")
	}
	n, err := c.Conn.Write(b)
	c.account(n)
	return n, err
}

func (c *conn) account(n int) {
	if n <= 0 {
		return
	}
	c.net.bytes.Add(int64(n))
	c.mu.Lock()
	c.moved += int64(n)
	c.mu.Unlock()
}
