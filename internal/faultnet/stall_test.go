package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestStallHangsUntilDeadline: a stalled connection looks alive at the TCP
// layer but never answers; an I/O with a deadline set must return a
// Timeout() net.Error roughly at the deadline, never a success.
func TestStallHangsUntilDeadline(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 1, StallProb: 1})
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(80 * time.Millisecond))
	start := time.Now()
	_, err = c.Write([]byte("into the void"))
	elapsed := time.Since(start)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("stalled write returned %v, want a Timeout() net.Error", err)
	}
	if elapsed < 60*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("stalled write returned after %v, want ~80ms", elapsed)
	}
	// Sticky: the next operation stalls too.
	c.SetDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("read on a stalled connection succeeded")
	}
	if st := fn.Stats(); st.Stalls < 2 {
		t.Errorf("stalls = %d, want >= 2", st.Stalls)
	}
}

// TestStallUnblocksOnClose: closing a stalled connection releases the
// hung operation immediately — a cancelled caller is never pinned for the
// full deadline.
func TestStallUnblocksOnClose(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 1, StallProb: 1})
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the write park in the stall
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("write on closed stalled conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock the stalled write")
	}
}

// TestSlowPeerDelaysEveryIO: the SlowPeer knob taxes each operation with a
// fixed delay but still completes it — the overloaded-but-alive mate.
func TestSlowPeerDelaysEveryIO(t *testing.T) {
	addr := echoServer(t, nil)
	fn := New(Plan{Seed: 1, SlowPeer: 30 * time.Millisecond})
	c, err := fn.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("slowly does it")
	start := time.Now()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("write+read took %v, want >= 60ms (30ms tax each)", elapsed)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo = %q", got)
	}
	if st := fn.Stats(); st.SlowIOs < 2 {
		t.Errorf("slowIOs = %d, want >= 2", st.SlowIOs)
	}
}

// TestParsePlanStallKeys covers the new spec keys.
func TestParsePlanStallKeys(t *testing.T) {
	p, err := ParsePlan("stall=0.25,slowpeer=15ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.StallProb != 0.25 || p.SlowPeer != 15*time.Millisecond {
		t.Errorf("plan = %+v, want stall 0.25 slowpeer 15ms", p)
	}
}
