package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestFixedLatencyRTT wires an echo server and a client through one Net
// with a fixed per-burst latency: a request/response exchange pays the
// latency once per direction, and writes inside the burst gap coalesce
// into one emulated packet.
func TestFixedLatencyRTT(t *testing.T) {
	const oneWay = 15 * time.Millisecond
	fn := New(Plan{Latency: oneWay})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := fn.Listener(ln)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	c, err := fn.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 2*oneWay {
		t.Errorf("round trip took %v, want >= %v", rtt, 2*oneWay)
	}
	if got := fn.Stats().Latencies; got != 2 {
		t.Errorf("latency sleeps = %d, want 2 (one per direction)", got)
	}

	// A frame written as header + payload — two writes microseconds apart —
	// rides one emulated packet: the exchange still pays exactly two sleeps.
	before := fn.Stats().Latencies
	start = time.Now()
	if _, err := c.Write([]byte("he")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ad")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt >= 4*oneWay {
		t.Errorf("burst round trip took %v: writes did not coalesce", rtt)
	}
	if delta := fn.Stats().Latencies - before; delta != 2 {
		t.Errorf("burst exchange paid %d sleeps, want 2", delta)
	}

	// Disable turns the link fast again without touching the counters.
	fn.Disable()
	before = fn.Stats().Latencies
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if delta := fn.Stats().Latencies - before; delta != 0 {
		t.Errorf("disabled net paid %d sleeps", delta)
	}
}

func TestParsePlanLatency(t *testing.T) {
	p, err := ParsePlan("latency=2500us,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != 2500*time.Microsecond || p.Seed != 3 {
		t.Errorf("plan = %+v", p)
	}
	if _, err := ParsePlan("latency=bogus"); err == nil {
		t.Error("bad latency accepted")
	}
}
