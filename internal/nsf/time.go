package nsf

import "time"

// Timestamp is a point in time with nanosecond resolution, stored as
// nanoseconds since the Unix epoch. Timestamps produced by the hybrid
// logical clock (internal/clock) are strictly monotonic per process, which
// makes them usable as replication sequence times.
type Timestamp int64

// TimestampOf converts a time.Time to a Timestamp.
func TimestampOf(t time.Time) Timestamp { return Timestamp(t.UnixNano()) }

// Time converts ts back to a time.Time in UTC.
func (ts Timestamp) Time() time.Time { return time.Unix(0, int64(ts)).UTC() }

// Before reports whether ts is strictly earlier than other.
func (ts Timestamp) Before(other Timestamp) bool { return ts < other }

// After reports whether ts is strictly later than other.
func (ts Timestamp) After(other Timestamp) bool { return ts > other }

// IsZero reports whether ts is the zero Timestamp.
func (ts Timestamp) IsZero() bool { return ts == 0 }

// String formats ts as RFC 3339 with nanoseconds.
func (ts Timestamp) String() string { return ts.Time().Format(time.RFC3339Nano) }
