package nsf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// codecVersion is the current note wire/storage format version.
const codecVersion = 1

// maxEncodedLen caps a single decoded collection length to defend against
// corrupt or hostile input.
const maxEncodedLen = 1 << 24

// AppendNote appends the canonical binary encoding of n to dst and returns
// the extended slice. The format is versioned and deterministic; it is used
// both by the storage engine and the wire protocol.
func AppendNote(dst []byte, n *Note) []byte {
	dst = append(dst, codecVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n.ID))
	dst = append(dst, n.OID.UNID[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, n.OID.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(n.OID.SeqTime))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(n.Class))
	dst = append(dst, byte(n.Flags))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(n.Created))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(n.Modified))
	dst = binary.AppendUvarint(dst, uint64(len(n.Items)))
	for i := range n.Items {
		dst = appendItem(dst, &n.Items[i])
	}
	return dst
}

// EncodeNote returns the canonical binary encoding of n.
func EncodeNote(n *Note) []byte {
	return AppendNote(make([]byte, 0, 64+32*len(n.Items)), n)
}

func appendItem(dst []byte, it *Item) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(it.Name)))
	dst = append(dst, it.Name...)
	dst = append(dst, byte(it.Flags))
	dst = binary.AppendUvarint(dst, uint64(it.Rev))
	return appendValue(dst, it.Value)
}

func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Type))
	switch v.Type {
	case TypeText:
		dst = binary.AppendUvarint(dst, uint64(len(v.Text)))
		for _, s := range v.Text {
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	case TypeNumber:
		dst = binary.AppendUvarint(dst, uint64(len(v.Numbers)))
		for _, n := range v.Numbers {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(n))
		}
	case TypeTime:
		dst = binary.AppendUvarint(dst, uint64(len(v.Times)))
		for _, t := range v.Times {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(t))
		}
	case TypeRaw:
		dst = binary.AppendUvarint(dst, uint64(len(v.Raw)))
		dst = append(dst, v.Raw...)
	default:
		// A zero-typed value encodes as type 0 with no payload.
	}
	return dst
}

// decoder is a bounds-checked cursor over an encoded note.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remain() int { return len(d.buf) - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remain() < n {
		return nil, fmt.Errorf("nsf: truncated note encoding at offset %d (need %d bytes, have %d)", d.off, n, d.remain())
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byte1() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("nsf: bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) length() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxEncodedLen {
		return 0, fmt.Errorf("nsf: implausible length %d at offset %d", v, d.off)
	}
	return int(v), nil
}

// EncodeValue returns the canonical binary encoding of a single value (the
// same encoding items use inside EncodeNote).
func EncodeValue(v Value) []byte { return appendValue(nil, v) }

// AppendValue appends the canonical binary encoding of a single value to
// dst, letting callers reuse scratch buffers the way AppendNote does.
func AppendValue(dst []byte, v Value) []byte { return appendValue(dst, v) }

// DecodeValue decodes a value produced by EncodeValue.
func DecodeValue(buf []byte) (Value, error) {
	d := &decoder{buf: buf}
	v, err := decodeValue(d)
	if err != nil {
		return Value{}, err
	}
	if d.remain() != 0 {
		return Value{}, fmt.Errorf("nsf: %d trailing bytes after value", d.remain())
	}
	return v, nil
}

// DecodeNote decodes a note previously produced by EncodeNote. The returned
// note does not alias buf.
func DecodeNote(buf []byte) (*Note, error) {
	d := &decoder{buf: buf}
	ver, err := d.byte1()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("nsf: unsupported note encoding version %d", ver)
	}
	n := &Note{}
	id, err := d.u32()
	if err != nil {
		return nil, err
	}
	n.ID = NoteID(id)
	unid, err := d.bytes(16)
	if err != nil {
		return nil, err
	}
	copy(n.OID.UNID[:], unid)
	if n.OID.Seq, err = d.u32(); err != nil {
		return nil, err
	}
	st, err := d.u64()
	if err != nil {
		return nil, err
	}
	n.OID.SeqTime = Timestamp(st)
	cls, err := d.u16()
	if err != nil {
		return nil, err
	}
	n.Class = NoteClass(cls)
	fl, err := d.byte1()
	if err != nil {
		return nil, err
	}
	n.Flags = NoteFlags(fl)
	cr, err := d.u64()
	if err != nil {
		return nil, err
	}
	n.Created = Timestamp(cr)
	mo, err := d.u64()
	if err != nil {
		return nil, err
	}
	n.Modified = Timestamp(mo)
	count, err := d.length()
	if err != nil {
		return nil, err
	}
	n.Items = make([]Item, 0, count)
	for i := 0; i < count; i++ {
		it, err := decodeItem(d)
		if err != nil {
			return nil, fmt.Errorf("nsf: item %d: %w", i, err)
		}
		n.Items = append(n.Items, it)
	}
	if d.remain() != 0 {
		return nil, fmt.Errorf("nsf: %d trailing bytes after note", d.remain())
	}
	return n, nil
}

func decodeItem(d *decoder) (Item, error) {
	var it Item
	nameLen, err := d.length()
	if err != nil {
		return it, err
	}
	name, err := d.bytes(nameLen)
	if err != nil {
		return it, err
	}
	it.Name = string(name)
	fl, err := d.byte1()
	if err != nil {
		return it, err
	}
	it.Flags = ItemFlags(fl)
	rev, err := d.uvarint()
	if err != nil {
		return it, err
	}
	it.Rev = uint32(rev)
	it.Value, err = decodeValue(d)
	return it, err
}

func decodeValue(d *decoder) (Value, error) {
	var v Value
	t, err := d.byte1()
	if err != nil {
		return v, err
	}
	v.Type = ItemType(t)
	switch v.Type {
	case TypeText:
		count, err := d.length()
		if err != nil {
			return v, err
		}
		v.Text = make([]string, 0, count)
		for i := 0; i < count; i++ {
			sl, err := d.length()
			if err != nil {
				return v, err
			}
			b, err := d.bytes(sl)
			if err != nil {
				return v, err
			}
			v.Text = append(v.Text, string(b))
		}
	case TypeNumber:
		count, err := d.length()
		if err != nil {
			return v, err
		}
		v.Numbers = make([]float64, 0, count)
		for i := 0; i < count; i++ {
			bits, err := d.u64()
			if err != nil {
				return v, err
			}
			v.Numbers = append(v.Numbers, math.Float64frombits(bits))
		}
	case TypeTime:
		count, err := d.length()
		if err != nil {
			return v, err
		}
		v.Times = make([]Timestamp, 0, count)
		for i := 0; i < count; i++ {
			tv, err := d.u64()
			if err != nil {
				return v, err
			}
			v.Times = append(v.Times, Timestamp(tv))
		}
	case TypeRaw:
		size, err := d.length()
		if err != nil {
			return v, err
		}
		b, err := d.bytes(size)
		if err != nil {
			return v, err
		}
		v.Raw = append([]byte(nil), b...)
	case 0:
		// Zero value: nothing follows.
	default:
		return v, fmt.Errorf("nsf: unknown item type %d", t)
	}
	return v, nil
}
