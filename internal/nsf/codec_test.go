package nsf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleNote() *Note {
	n := NewNote(ClassDocument)
	n.ID = 42
	n.OID.Seq = 7
	n.OID.SeqTime = 1234567890
	n.Created = 111
	n.Modified = 222
	n.SetText("Subject", "hello world")
	n.SetText("Categories", "a", "b", "c")
	n.SetNumber("Priority", 3)
	n.SetTime("Due", 999)
	n.SetWithFlags("DocReaders", TextValue("alice", "bob"), FlagReaders|FlagSummary)
	n.Set("Blob", RawValue([]byte{0, 1, 2, 255}))
	return n
}

func TestCodecRoundTrip(t *testing.T) {
	n := sampleNote()
	enc := EncodeNote(n)
	got, err := DecodeNote(enc)
	if err != nil {
		t.Fatalf("DecodeNote: %v", err)
	}
	if !reflect.DeepEqual(n, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, n)
	}
}

func TestCodecEmptyNote(t *testing.T) {
	n := NewNote(ClassDocument)
	got, err := DecodeNote(EncodeNote(n))
	if err != nil {
		t.Fatalf("DecodeNote: %v", err)
	}
	if got.OID.UNID != n.OID.UNID || len(got.Items) != 0 {
		t.Errorf("empty note mismatch: %+v", got)
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	enc := EncodeNote(sampleNote())
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeNote(enc[:cut]); err == nil {
			t.Fatalf("DecodeNote accepted truncation at %d bytes", cut)
		}
	}
}

func TestCodecRejectsTrailingGarbage(t *testing.T) {
	enc := EncodeNote(sampleNote())
	if _, err := DecodeNote(append(enc, 0xAB)); err == nil {
		t.Fatal("DecodeNote accepted trailing garbage")
	}
}

func TestCodecRejectsBadVersion(t *testing.T) {
	enc := EncodeNote(sampleNote())
	enc[0] = 99
	if _, err := DecodeNote(enc); err == nil {
		t.Fatal("DecodeNote accepted bad version")
	}
}

func TestCodecRejectsRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		if len(buf) > 0 {
			buf[0] = codecVersion
		}
		// Must not panic; errors are fine, occasional accidental success is
		// acceptable for random input of valid shape.
		_, _ = DecodeNote(buf)
	}
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		n := rng.Intn(4)
		entries := make([]string, n)
		for i := range entries {
			b := make([]byte, rng.Intn(12))
			rng.Read(b)
			entries[i] = string(b)
		}
		return TextValue(entries...)
	case 1:
		n := rng.Intn(4)
		entries := make([]float64, n)
		for i := range entries {
			entries[i] = rng.NormFloat64() * 1e6
		}
		return NumberValue(entries...)
	case 2:
		n := rng.Intn(4)
		entries := make([]Timestamp, n)
		for i := range entries {
			entries[i] = Timestamp(rng.Int63())
		}
		return TimeValue(entries...)
	default:
		b := make([]byte, rng.Intn(32))
		rng.Read(b)
		return RawValue(b)
	}
}

// TestCodecQuick property-tests that encode→decode is the identity over
// randomly generated notes.
func TestCodecQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNote(ClassDocument)
		n.ID = NoteID(rng.Uint32())
		n.OID.Seq = rng.Uint32()
		n.OID.SeqTime = Timestamp(rng.Int63())
		n.Flags = NoteFlags(rng.Intn(4))
		n.Created = Timestamp(rng.Int63())
		n.Modified = Timestamp(rng.Int63())
		for i, k := 0, rng.Intn(8); i < k; i++ {
			nameBytes := make([]byte, 1+rng.Intn(10))
			rng.Read(nameBytes)
			n.Items = append(n.Items, Item{
				Name:  string(nameBytes),
				Flags: ItemFlags(rng.Intn(32)),
				Rev:   rng.Uint32(),
				Value: randomValue(rng),
			})
		}
		got, err := DecodeNote(EncodeNote(n))
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return noteEqual(n, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// noteEqual compares notes treating nil and empty slices as equal.
func noteEqual(a, b *Note) bool {
	if a.ID != b.ID || a.OID != b.OID || a.Class != b.Class || a.Flags != b.Flags ||
		a.Created != b.Created || a.Modified != b.Modified || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.Name != y.Name || x.Flags != y.Flags || x.Rev != y.Rev || !x.Value.Equal(y.Value) {
			return false
		}
	}
	return true
}

func TestValueEqualNaN(t *testing.T) {
	a := NumberValue(math.NaN())
	b := NumberValue(math.NaN())
	if !a.Equal(b) {
		t.Error("NaN values should compare equal for replication purposes")
	}
}
