package nsf

import (
	"bytes"
	"testing"
)

// FuzzDecodeNote throws arbitrary bytes at the note decoder. DecodeNote
// guards the trust boundary twice over — every wire frame and every WAL
// record passes through it — so it must never panic, and anything it
// accepts must survive a re-encode/re-decode round trip unchanged.
func FuzzDecodeNote(f *testing.F) {
	f.Add(EncodeNote(sampleNote()))
	f.Add(EncodeNote(NewNote(ClassDocument)))
	stub := NewNote(ClassDocument)
	stub.Flags |= FlagDeleted
	f.Add(EncodeNote(stub))
	full := EncodeNote(sampleNote())
	f.Add(full[:len(full)/2])
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNote(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		re := EncodeNote(n)
		n2, err := DecodeNote(re)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !noteEqual(n, n2) {
			t.Fatalf("re-encode round trip changed the note:\n got %+v\nwant %+v", n2, n)
		}
		if !bytes.Equal(re, EncodeNote(n2)) {
			t.Fatal("encoding is not stable across round trips")
		}
	})
}
