package nsf

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strings"
)

// CanonicalDigest computes a stable SHA-256 digest of the note's identity
// and content: the UNID plus every item (name-sorted, case-folded names),
// excluding items whose lower-cased names appear in exclude. Signing uses
// it with the signature items excluded so the digest is reproducible after
// the signature is attached.
func (n *Note) CanonicalDigest(exclude ...string) [32]byte {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[strings.ToLower(e)] = true
	}
	items := make([]Item, 0, len(n.Items))
	for _, it := range n.Items {
		if !skip[strings.ToLower(it.Name)] {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		return strings.ToLower(items[i].Name) < strings.ToLower(items[j].Name)
	})
	h := sha256.New()
	h.Write(n.OID.UNID[:])
	var lenBuf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, it := range items {
		writeStr(strings.ToLower(it.Name))
		// Values hash via the canonical codec (type + entries), without
		// flags or revisions: a signature covers content, not bookkeeping.
		enc := appendValue(nil, it.Value)
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(enc)))
		h.Write(lenBuf[:])
		h.Write(enc)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}
