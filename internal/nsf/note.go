package nsf

import (
	"slices"
	"strings"
)

// NoteClass distinguishes data documents from design and administrative
// notes stored in the same database.
type NoteClass uint16

// Note classes.
const (
	ClassDocument NoteClass = 1 << iota
	ClassForm
	ClassView
	ClassACL
	ClassAgent
	ClassReplFormula
	ClassAny NoteClass = 0xffff
)

// String returns the class name.
func (c NoteClass) String() string {
	switch c {
	case ClassDocument:
		return "document"
	case ClassForm:
		return "form"
	case ClassView:
		return "view"
	case ClassACL:
		return "acl"
	case ClassAgent:
		return "agent"
	case ClassReplFormula:
		return "replformula"
	case ClassAny:
		return "any"
	default:
		return "class?"
	}
}

// NoteFlags carry per-note state bits.
type NoteFlags uint8

// Note flags.
const (
	// FlagDeleted marks a deletion stub: the note's items are gone but its
	// identity and version survive so the deletion can replicate.
	FlagDeleted NoteFlags = 1 << iota
	// FlagConflict marks a replication/save conflict document.
	FlagConflict
	// FlagSelStub marks a selection stub: a deletion stub materialized on a
	// replica because the document fell outside (or never entered) a
	// selective-replication formula, not because anyone deleted it. It
	// carries the OID of the version it withholds. Unlike a true deletion
	// stub it has no deletion authority: a strictly newer live version —
	// the document re-entering the selection — resurrects the document.
	FlagSelStub
)

// OID is the originator ID: the note's universal identity plus its version.
// Seq counts the number of saves of the document anywhere in the replica
// set; SeqTime is the timestamp of the last save. Together they drive
// replication change detection and conflict resolution.
type OID struct {
	UNID    UNID
	Seq     uint32
	SeqTime Timestamp
}

// Newer reports whether o is the replication winner over other under the
// Notes rule: higher sequence number wins, ties break on later SeqTime.
func (o OID) Newer(other OID) bool {
	if o.Seq != other.Seq {
		return o.Seq > other.Seq
	}
	return o.SeqTime > other.SeqTime
}

// Note is a single document (or design element): a bag of items plus
// identity, version, and bookkeeping timestamps.
type Note struct {
	ID       NoteID // per-replica; 0 until stored
	OID      OID
	Class    NoteClass
	Flags    NoteFlags
	Created  Timestamp
	Modified Timestamp
	Items    []Item
}

// NewNote returns a fresh document note with a new UNID and the given items
// left to be filled in by Set calls.
func NewNote(class NoteClass) *Note {
	return &Note{OID: OID{UNID: NewUNID()}, Class: class}
}

// IsStub reports whether n is a deletion stub.
func (n *Note) IsStub() bool { return n.Flags&FlagDeleted != 0 }

// IsSelStub reports whether n is a selection stub: a stub standing in for
// a version withheld by selective replication rather than a deletion.
func (n *Note) IsSelStub() bool { return n.Flags&FlagSelStub != 0 }

// IsConflict reports whether n is a conflict document.
func (n *Note) IsConflict() bool { return n.Flags&FlagConflict != 0 }

// Item returns the item with the given (case-insensitive) name.
func (n *Note) Item(name string) (Item, bool) {
	for _, it := range n.Items {
		if EqualNames(it.Name, name) {
			return it, true
		}
	}
	return Item{}, false
}

// Has reports whether the note has an item with the given name.
func (n *Note) Has(name string) bool {
	_, ok := n.Item(name)
	return ok
}

// Get returns the value of the named item, or a zero Value if absent.
func (n *Note) Get(name string) Value {
	if it, ok := n.Item(name); ok {
		return it.Value
	}
	return Value{}
}

// Text returns the first text entry of the named item, or "".
func (n *Note) Text(name string) string {
	v := n.Get(name)
	if v.Type == TypeText && len(v.Text) > 0 {
		return v.Text[0]
	}
	return ""
}

// TextList returns all text entries of the named item.
func (n *Note) TextList(name string) []string {
	v := n.Get(name)
	if v.Type == TypeText {
		return v.Text
	}
	return nil
}

// Number returns the first number entry of the named item, or 0.
func (n *Note) Number(name string) float64 {
	v := n.Get(name)
	if v.Type == TypeNumber && len(v.Numbers) > 0 {
		return v.Numbers[0]
	}
	return 0
}

// Time returns the first time entry of the named item, or the zero Timestamp.
func (n *Note) Time(name string) Timestamp {
	v := n.Get(name)
	if v.Type == TypeTime && len(v.Times) > 0 {
		return v.Times[0]
	}
	return 0
}

// Set stores an item, replacing any existing item of the same name while
// preserving its flags unless flags are supplied via SetWithFlags.
func (n *Note) Set(name string, v Value) {
	for i := range n.Items {
		if EqualNames(n.Items[i].Name, name) {
			n.Items[i].Value = v
			return
		}
	}
	n.Items = append(n.Items, Item{Name: name, Value: v})
}

// SetWithFlags stores an item with explicit flags, replacing any existing
// item of the same name.
func (n *Note) SetWithFlags(name string, v Value, flags ItemFlags) {
	for i := range n.Items {
		if EqualNames(n.Items[i].Name, name) {
			n.Items[i].Value = v
			n.Items[i].Flags = flags
			return
		}
	}
	n.Items = append(n.Items, Item{Name: name, Value: v, Flags: flags})
}

// SetText stores a text item.
func (n *Note) SetText(name string, entries ...string) { n.Set(name, TextValue(entries...)) }

// SetNumber stores a number item.
func (n *Note) SetNumber(name string, entries ...float64) { n.Set(name, NumberValue(entries...)) }

// SetTime stores a time item.
func (n *Note) SetTime(name string, entries ...Timestamp) { n.Set(name, TimeValue(entries...)) }

// Remove deletes the named item. It reports whether an item was removed.
func (n *Note) Remove(name string) bool {
	for i := range n.Items {
		if EqualNames(n.Items[i].Name, name) {
			n.Items = slices.Delete(n.Items, i, i+1)
			return true
		}
	}
	return false
}

// ItemNames returns the names of all items in note order.
func (n *Note) ItemNames() []string {
	names := make([]string, len(n.Items))
	for i, it := range n.Items {
		names[i] = it.Name
	}
	return names
}

// Readers returns the union of all entries of items flagged Readers, or nil
// if the note has no reader restriction.
func (n *Note) Readers() []string {
	var out []string
	for _, it := range n.Items {
		if it.Flags.Has(FlagReaders) && it.Value.Type == TypeText {
			out = append(out, it.Value.Text...)
		}
	}
	return out
}

// Authors returns the union of all entries of items flagged Authors.
func (n *Note) Authors() []string {
	var out []string
	for _, it := range n.Items {
		if it.Flags.Has(FlagAuthors) && it.Value.Type == TypeText {
			out = append(out, it.Value.Text...)
		}
	}
	return out
}

// Clone returns a deep copy of n.
func (n *Note) Clone() *Note {
	c := *n
	c.Items = make([]Item, len(n.Items))
	for i, it := range n.Items {
		c.Items[i] = it.Clone()
	}
	return &c
}

// CloneShared returns a copy of n whose Items slice is independent but
// whose Values share backing arrays with n. The Set* mutators replace a
// Value wholesale, so two shared clones cannot disturb each other through
// them; callers must treat the element data inside a Value (Text entries,
// Raw bytes, and so on) as immutable and never write into it in place.
// The store's note cache hands out shared clones, which is why the cheap
// copy matters: a deep Clone on every cache hit would cost more than the
// B+tree descent it saves.
func (n *Note) CloneShared() *Note {
	c := *n
	c.Items = make([]Item, len(n.Items))
	copy(c.Items, n.Items)
	return &c
}

// ChangedItems returns the names of items that differ between n and old:
// items added or modified in n, and items present in old but missing from
// n. Names are reported in lower case.
func (n *Note) ChangedItems(old *Note) []string {
	var changed []string
	seen := make(map[string]bool)
	for _, it := range n.Items {
		key := strings.ToLower(it.Name)
		seen[key] = true
		oldIt, ok := old.Item(it.Name)
		if !ok || !oldIt.Value.Equal(it.Value) || oldIt.Flags != it.Flags {
			changed = append(changed, key)
		}
	}
	for _, it := range old.Items {
		key := strings.ToLower(it.Name)
		if !seen[key] {
			changed = append(changed, key)
		}
	}
	slices.Sort(changed)
	return changed
}

// Summary returns a shallow note containing only summary-flagged items; it
// is the cheap projection replicated and indexed first.
func (n *Note) Summary() *Note {
	c := *n
	c.Items = nil
	for _, it := range n.Items {
		if it.Flags.Has(FlagSummary) {
			c.Items = append(c.Items, it.Clone())
		}
	}
	return &c
}
