package nsf

import (
	"fmt"
	"slices"
	"strings"
)

// Attachments: Notes stores file attachments as $FILE items on the note.
// The item name is "$FILE:" + the file name; the value is the raw bytes.
// The storage engine chains large records across pages, so attachments of
// arbitrary size ride along with the note and replicate with it.

const filePrefix = "$FILE:"

// Attach stores a file attachment on the note, replacing any attachment
// with the same name.
func (n *Note) Attach(filename string, data []byte) error {
	if filename == "" || strings.ContainsAny(filename, "/\\") {
		return fmt.Errorf("nsf: invalid attachment name %q", filename)
	}
	n.Set(filePrefix+filename, RawValue(slices.Clone(data)))
	return nil
}

// Attachment returns the named attachment's bytes.
func (n *Note) Attachment(filename string) ([]byte, bool) {
	v := n.Get(filePrefix + filename)
	if v.Type != TypeRaw {
		return nil, false
	}
	return v.Raw, true
}

// Detach removes the named attachment, reporting whether it existed.
func (n *Note) Detach(filename string) bool {
	return n.Remove(filePrefix + filename)
}

// AttachmentNames lists the note's attachments in item order.
func (n *Note) AttachmentNames() []string {
	var out []string
	for _, it := range n.Items {
		if len(it.Name) > len(filePrefix) && EqualNames(it.Name[:len(filePrefix)], filePrefix) {
			out = append(out, it.Name[len(filePrefix):])
		}
	}
	return out
}
