package nsf

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// ItemType identifies the value type stored in an item. Notes items are
// always logically lists; a scalar is a one-element list.
type ItemType uint8

// Item value types.
const (
	TypeText ItemType = iota + 1
	TypeNumber
	TypeTime
	TypeRaw
)

// String returns the type name.
func (t ItemType) String() string {
	switch t {
	case TypeText:
		return "text"
	case TypeNumber:
		return "number"
	case TypeTime:
		return "time"
	case TypeRaw:
		return "raw"
	default:
		return fmt.Sprintf("ItemType(%d)", uint8(t))
	}
}

// ItemFlags carry per-item metadata bits.
type ItemFlags uint8

// Item flags.
const (
	// FlagSummary marks items whose values are included in note summaries
	// (the cheap projection used by views and replication scans).
	FlagSummary ItemFlags = 1 << iota
	// FlagReaders marks a text item listing the only names allowed to read
	// the note (in addition to those with Editor access or better who
	// appear in Author items).
	FlagReaders
	// FlagAuthors marks a text item listing names granted edit rights to
	// the note even if their ACL level is only Author.
	FlagAuthors
	// FlagNames marks a text item holding user or server names.
	FlagNames
	// FlagProtected marks an item that only Manager-level users may modify.
	FlagProtected
	// FlagSealed marks an item whose value is encrypted for named
	// recipients (see the core package's SealItem/OpenItem).
	FlagSealed
)

// Has reports whether all bits of mask are set.
func (f ItemFlags) Has(mask ItemFlags) bool { return f&mask == mask }

// Value is an item value: a typed list. Exactly the slice matching Type is
// populated (Raw uses Raw).
type Value struct {
	Type    ItemType
	Text    []string
	Numbers []float64
	Times   []Timestamp
	Raw     []byte
}

// Text returns a text value with the given entries.
func TextValue(entries ...string) Value { return Value{Type: TypeText, Text: entries} }

// NumberValue returns a number value with the given entries.
func NumberValue(entries ...float64) Value { return Value{Type: TypeNumber, Numbers: entries} }

// TimeValue returns a time value with the given entries.
func TimeValue(entries ...Timestamp) Value { return Value{Type: TypeTime, Times: entries} }

// RawValue returns a raw (opaque bytes) value.
func RawValue(b []byte) Value { return Value{Type: TypeRaw, Raw: b} }

// Len returns the number of list entries in v.
func (v Value) Len() int {
	switch v.Type {
	case TypeText:
		return len(v.Text)
	case TypeNumber:
		return len(v.Numbers)
	case TypeTime:
		return len(v.Times)
	case TypeRaw:
		if len(v.Raw) == 0 {
			return 0
		}
		return 1
	default:
		return 0
	}
}

// Equal reports whether v and other hold the same type and entries.
func (v Value) Equal(other Value) bool {
	if v.Type != other.Type {
		return false
	}
	switch v.Type {
	case TypeText:
		return slices.Equal(v.Text, other.Text)
	case TypeNumber:
		if len(v.Numbers) != len(other.Numbers) {
			return false
		}
		for i, n := range v.Numbers {
			o := other.Numbers[i]
			if n != o && !(math.IsNaN(n) && math.IsNaN(o)) {
				return false
			}
		}
		return true
	case TypeTime:
		return slices.Equal(v.Times, other.Times)
	case TypeRaw:
		return slices.Equal(v.Raw, other.Raw)
	default:
		return true
	}
}

// Clone returns a deep copy of v.
func (v Value) Clone() Value {
	return Value{
		Type:    v.Type,
		Text:    slices.Clone(v.Text),
		Numbers: slices.Clone(v.Numbers),
		Times:   slices.Clone(v.Times),
		Raw:     slices.Clone(v.Raw),
	}
}

// String formats v for debugging and @Text-style conversion.
func (v Value) String() string {
	switch v.Type {
	case TypeText:
		return strings.Join(v.Text, ";")
	case TypeNumber:
		parts := make([]string, len(v.Numbers))
		for i, n := range v.Numbers {
			parts[i] = formatNumber(n)
		}
		return strings.Join(parts, ";")
	case TypeTime:
		parts := make([]string, len(v.Times))
		for i, t := range v.Times {
			parts[i] = t.String()
		}
		return strings.Join(parts, ";")
	case TypeRaw:
		return fmt.Sprintf("<%d raw bytes>", len(v.Raw))
	default:
		return ""
	}
}

func formatNumber(n float64) string {
	if n == math.Trunc(n) && math.Abs(n) < 1e15 {
		return fmt.Sprintf("%d", int64(n))
	}
	return fmt.Sprintf("%g", n)
}

// Item is a named, typed, flagged value on a note.
type Item struct {
	Name  string
	Flags ItemFlags
	Value Value
	// Rev is the note sequence number at which the item last changed; it
	// supports field-level replication conflict merging.
	Rev uint32
}

// Clone returns a deep copy of it.
func (it Item) Clone() Item {
	it.Value = it.Value.Clone()
	return it
}

// EqualNames reports whether two item names refer to the same item. Notes
// item names are case-insensitive.
func EqualNames(a, b string) bool { return strings.EqualFold(a, b) }
