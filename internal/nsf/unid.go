// Package nsf implements the Notes Storage Facility data model: notes
// (documents) made of typed items, identified by universal note IDs and
// versioned by originator IDs. It also provides the canonical binary
// encoding of notes used by both the storage engine and the wire protocol.
package nsf

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// UNID is a universal note ID: a 16-byte identifier that is identical for
// the same logical document in every replica of a database.
type UNID [16]byte

// NewUNID returns a fresh random UNID.
func NewUNID() UNID {
	var u UNID
	if _, err := rand.Read(u[:]); err != nil {
		// crypto/rand never fails on supported platforms; treat failure as fatal.
		panic("nsf: reading random bytes: " + err.Error())
	}
	return u
}

// IsZero reports whether u is the zero UNID.
func (u UNID) IsZero() bool {
	return u == UNID{}
}

// String returns the canonical 32-character hex form of u.
func (u UNID) String() string {
	return hex.EncodeToString(u[:])
}

// ParseUNID parses the 32-character hex form produced by String.
func ParseUNID(s string) (UNID, error) {
	var u UNID
	if len(s) != 32 {
		return u, fmt.Errorf("nsf: parse UNID %q: want 32 hex chars, got %d", s, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return u, fmt.Errorf("nsf: parse UNID %q: %w", s, err)
	}
	copy(u[:], b)
	return u, nil
}

// NoteID is a per-replica local note identifier assigned by the storage
// engine. Unlike UNIDs, NoteIDs differ between replicas.
type NoteID uint32

// ReplicaID identifies a replication set: two databases with the same
// ReplicaID are replicas of each other.
type ReplicaID [8]byte

// NewReplicaID returns a fresh random ReplicaID.
func NewReplicaID() ReplicaID {
	var r ReplicaID
	if _, err := rand.Read(r[:]); err != nil {
		panic("nsf: reading random bytes: " + err.Error())
	}
	return r
}

// IsZero reports whether r is the zero ReplicaID.
func (r ReplicaID) IsZero() bool {
	return r == ReplicaID{}
}

// String returns the canonical 16-character hex form of r.
func (r ReplicaID) String() string {
	return hex.EncodeToString(r[:])
}

// ParseReplicaID parses the 16-character hex form produced by String.
func ParseReplicaID(s string) (ReplicaID, error) {
	var r ReplicaID
	if len(s) != 16 {
		return r, fmt.Errorf("nsf: parse ReplicaID %q: want 16 hex chars, got %d", s, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return r, fmt.Errorf("nsf: parse ReplicaID %q: %w", s, err)
	}
	copy(r[:], b)
	return r, nil
}
