package nsf

import (
	"reflect"
	"testing"
)

func TestUNIDStringRoundTrip(t *testing.T) {
	u := NewUNID()
	got, err := ParseUNID(u.String())
	if err != nil {
		t.Fatalf("ParseUNID: %v", err)
	}
	if got != u {
		t.Errorf("round trip: got %v want %v", got, u)
	}
	if _, err := ParseUNID("short"); err == nil {
		t.Error("ParseUNID accepted short input")
	}
	if _, err := ParseUNID("zz000000000000000000000000000000"); err == nil {
		t.Error("ParseUNID accepted non-hex input")
	}
}

func TestReplicaIDStringRoundTrip(t *testing.T) {
	r := NewReplicaID()
	got, err := ParseReplicaID(r.String())
	if err != nil {
		t.Fatalf("ParseReplicaID: %v", err)
	}
	if got != r {
		t.Errorf("round trip: got %v want %v", got, r)
	}
}

func TestItemNameCaseInsensitive(t *testing.T) {
	n := NewNote(ClassDocument)
	n.SetText("Subject", "one")
	n.SetText("SUBJECT", "two")
	if len(n.Items) != 1 {
		t.Fatalf("want 1 item, got %d", len(n.Items))
	}
	if got := n.Text("subject"); got != "two" {
		t.Errorf("Text(subject) = %q, want %q", got, "two")
	}
	if !n.Remove("sUbJeCt") {
		t.Error("Remove failed")
	}
	if n.Has("Subject") {
		t.Error("item survived Remove")
	}
}

func TestAccessors(t *testing.T) {
	n := NewNote(ClassDocument)
	n.SetNumber("Count", 5, 6)
	n.SetTime("When", 77)
	n.SetText("Tags", "x", "y")
	if n.Number("Count") != 5 {
		t.Errorf("Number = %v", n.Number("Count"))
	}
	if n.Time("When") != 77 {
		t.Errorf("Time = %v", n.Time("When"))
	}
	if got := n.TextList("Tags"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("TextList = %v", got)
	}
	if n.Number("Missing") != 0 || n.Text("Missing") != "" || n.Time("Missing") != 0 {
		t.Error("missing items should yield zero values")
	}
}

func TestOIDNewer(t *testing.T) {
	base := OID{Seq: 3, SeqTime: 100}
	cases := []struct {
		name  string
		other OID
		want  bool
	}{
		{"higher seq wins", OID{Seq: 2, SeqTime: 999}, true},
		{"lower seq loses", OID{Seq: 4, SeqTime: 1}, false},
		{"tie later time wins", OID{Seq: 3, SeqTime: 50}, true},
		{"tie earlier time loses", OID{Seq: 3, SeqTime: 150}, false},
		{"identical is not newer", OID{Seq: 3, SeqTime: 100}, false},
	}
	for _, tc := range cases {
		if got := base.Newer(tc.other); got != tc.want {
			t.Errorf("%s: Newer = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestReadersAuthors(t *testing.T) {
	n := NewNote(ClassDocument)
	if n.Readers() != nil {
		t.Error("unrestricted note should have nil Readers")
	}
	n.SetWithFlags("DocReaders", TextValue("alice"), FlagReaders)
	n.SetWithFlags("MoreReaders", TextValue("bob"), FlagReaders)
	n.SetWithFlags("DocAuthors", TextValue("carol"), FlagAuthors)
	if got := n.Readers(); !reflect.DeepEqual(got, []string{"alice", "bob"}) {
		t.Errorf("Readers = %v", got)
	}
	if got := n.Authors(); !reflect.DeepEqual(got, []string{"carol"}) {
		t.Errorf("Authors = %v", got)
	}
}

func TestChangedItems(t *testing.T) {
	old := NewNote(ClassDocument)
	old.SetText("A", "1")
	old.SetText("B", "2")
	old.SetText("C", "3")
	cur := old.Clone()
	cur.SetText("B", "changed")
	cur.Remove("C")
	cur.SetText("D", "new")
	got := cur.ChangedItems(old)
	want := []string{"b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ChangedItems = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := NewNote(ClassDocument)
	n.SetText("Tags", "x")
	c := n.Clone()
	c.Items[0].Value.Text[0] = "mutated"
	if n.Text("Tags") != "x" {
		t.Error("Clone shares storage with original")
	}
}

func TestSummaryProjection(t *testing.T) {
	n := NewNote(ClassDocument)
	n.SetWithFlags("Subject", TextValue("s"), FlagSummary)
	n.SetText("Body", "big body")
	s := n.Summary()
	if s.Has("Body") || !s.Has("Subject") {
		t.Errorf("Summary items = %v", s.ItemNames())
	}
	if s.OID != n.OID {
		t.Error("Summary must preserve OID")
	}
}
