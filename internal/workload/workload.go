// Package workload generates synthetic groupware corpora and update traces:
// the stand-in for the proprietary customer mail files and discussion
// databases the original system was exercised with. Generators are
// deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/nsf"
)

// vocabulary is the word pool for document bodies; term frequencies follow
// a Zipf-like distribution via the generator.
var vocabulary = []string{
	"meeting", "project", "deadline", "review", "customer", "release",
	"budget", "server", "replica", "database", "schedule", "report",
	"quarter", "design", "update", "status", "urgent", "team", "offsite",
	"contract", "invoice", "shipment", "feedback", "agenda", "minutes",
	"proposal", "draft", "final", "approved", "pending", "blocked",
	"escalation", "outage", "maintenance", "migration", "rollout", "training",
	"workshop", "onboarding", "audit", "compliance", "security", "backup",
	"archive", "groupware", "workflow", "notes", "domino", "mail", "calendar",
}

var firstNames = []string{
	"ada", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "ken", "lena", "mallory", "nick", "olivia", "peggy",
}

var categories = []string{
	"Sales", "Engineering", "Support", "Marketing", "Finance",
	"Operations", "Legal", "Research",
}

// Generator produces synthetic documents and update traces.
type Generator struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

// New returns a generator with the given seed.
func New(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		rng:  rng,
		zipf: rand.NewZipf(rng, 1.3, 1, uint64(len(vocabulary)-1)),
	}
}

// word draws a vocabulary word with a Zipf-like frequency distribution.
func (g *Generator) word() string {
	return vocabulary[int(g.zipf.Uint64())]
}

// Author draws an author name (uniform over the name pool).
func (g *Generator) Author() string {
	return firstNames[g.rng.Intn(len(firstNames))]
}

// Category draws a category.
func (g *Generator) Category() string {
	return categories[g.rng.Intn(len(categories))]
}

// Sentence builds a sentence of n words.
func (g *Generator) Sentence(n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = g.word()
	}
	return strings.Join(words, " ")
}

// Document generates a memo-style document with a body of roughly bodyBytes
// bytes. Subject, author, and category items carry the summary flag, as a
// Notes form would mark them.
func (g *Generator) Document(bodyBytes int) *nsf.Note {
	g.seq++
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Memo")
	n.SetWithFlags("Subject",
		nsf.TextValue(fmt.Sprintf("%s %s #%d", g.word(), g.word(), g.seq)),
		nsf.FlagSummary)
	n.SetWithFlags("From", nsf.TextValue(g.Author()), nsf.FlagSummary|nsf.FlagNames)
	n.SetWithFlags("Category", nsf.TextValue(g.Category()), nsf.FlagSummary)
	n.SetNumber("Priority", float64(g.rng.Intn(10)))
	var body strings.Builder
	for body.Len() < bodyBytes {
		body.WriteString(g.Sentence(8 + g.rng.Intn(8)))
		body.WriteString(". ")
	}
	n.SetText("Body", body.String())
	return n
}

// Corpus generates count documents with the given body size.
func (g *Generator) Corpus(count, bodyBytes int) []*nsf.Note {
	out := make([]*nsf.Note, count)
	for i := range out {
		out[i] = g.Document(bodyBytes)
	}
	return out
}

// Thread generates a discussion thread: one topic document and depth
// response documents chained by $Ref.
func (g *Generator) Thread(depth, bodyBytes int) []*nsf.Note {
	out := make([]*nsf.Note, 0, depth+1)
	topic := g.Document(bodyBytes)
	topic.SetText("Form", "Topic")
	out = append(out, topic)
	parent := topic
	for i := 0; i < depth; i++ {
		resp := g.Document(bodyBytes)
		resp.SetText("Form", "Response")
		resp.SetWithFlags("$Ref", nsf.TextValue(parent.OID.UNID.String()), nsf.FlagSummary)
		out = append(out, resp)
		if g.rng.Intn(2) == 0 {
			parent = resp // sometimes nest deeper
		}
	}
	return out
}

// Mutate applies a small random edit to a note (the update trace primitive):
// it rewrites one of the mutable items.
func (g *Generator) Mutate(n *nsf.Note) {
	switch g.rng.Intn(3) {
	case 0:
		n.SetText("Body", g.Sentence(30))
	case 1:
		n.SetNumber("Priority", float64(g.rng.Intn(10)))
	default:
		n.SetWithFlags("Category", nsf.TextValue(g.Category()), nsf.FlagSummary)
	}
}

// Queries returns n full-text queries drawn from the vocabulary: a mix of
// single terms, conjunctions, and phrases.
func (g *Generator) Queries(n int) []string {
	out := make([]string, n)
	for i := range out {
		switch g.rng.Intn(3) {
		case 0:
			out[i] = g.word()
		case 1:
			out[i] = g.word() + " " + g.word()
		default:
			out[i] = fmt.Sprintf("%q", g.word()+" "+g.word())
		}
	}
	return out
}
