package workload

import (
	"testing"

	"repro/internal/nsf"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 50; i++ {
		da, db := a.Document(500), b.Document(500)
		if da.Text("Subject") != db.Text("Subject") || da.Text("Body") != db.Text("Body") {
			t.Fatalf("generators diverged at doc %d", i)
		}
	}
}

func TestDocumentShape(t *testing.T) {
	g := New(1)
	n := g.Document(2000)
	if len(n.Text("Body")) < 2000 {
		t.Errorf("body only %d bytes", len(n.Text("Body")))
	}
	for _, item := range []string{"Form", "Subject", "From", "Category", "Priority"} {
		if !n.Has(item) {
			t.Errorf("missing item %s", item)
		}
	}
	subj, _ := n.Item("Subject")
	if !subj.Flags.Has(nsf.FlagSummary) {
		t.Error("Subject not summary-flagged")
	}
}

func TestCorpusAndThread(t *testing.T) {
	g := New(2)
	corpus := g.Corpus(100, 300)
	if len(corpus) != 100 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	seen := make(map[nsf.UNID]bool)
	for _, n := range corpus {
		if seen[n.OID.UNID] {
			t.Fatal("duplicate UNID in corpus")
		}
		seen[n.OID.UNID] = true
	}
	thread := g.Thread(5, 200)
	if len(thread) != 6 {
		t.Fatalf("thread size %d", len(thread))
	}
	if thread[0].Has("$Ref") {
		t.Error("topic has $Ref")
	}
	for _, resp := range thread[1:] {
		if !resp.Has("$Ref") {
			t.Error("response missing $Ref")
		}
	}
}

func TestMutateChangesSomething(t *testing.T) {
	g := New(3)
	n := g.Document(300)
	orig := n.Clone()
	changedOnce := false
	for i := 0; i < 10; i++ {
		g.Mutate(n)
		if len(n.ChangedItems(orig)) > 0 {
			changedOnce = true
			break
		}
	}
	if !changedOnce {
		t.Error("Mutate never changed the note")
	}
}

func TestQueriesParse(t *testing.T) {
	g := New(4)
	qs := g.Queries(20)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q == "" {
			t.Error("empty query generated")
		}
	}
}
