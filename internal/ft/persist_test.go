package ft

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/nsf"
)

func snapshotRoundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	return loaded
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix := NewIndex()
	restricted := textNote("secret plans", "the heist begins at dawn")
	restricted.SetWithFlags("DocReaders", nsf.TextValue("alice", "bob"), nsf.FlagReaders)
	docs := []*nsf.Note{
		textNote("groupware", "notes domino replication replication"),
		textNote("cooking", "slow roast replication of recipes"),
		restricted,
	}
	for _, n := range docs {
		ix.Update(n)
	}
	loaded := snapshotRoundTrip(t, ix)
	if loaded.DocCount() != ix.DocCount() || loaded.TermCount() != ix.TermCount() {
		t.Fatalf("counts: %d/%d vs %d/%d",
			loaded.DocCount(), loaded.TermCount(), ix.DocCount(), ix.TermCount())
	}
	for _, q := range []string{"replication", `"heist begins"`, "roast OR domino", "NOT cooking"} {
		a, err := ix.Search(q)
		if err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatalf("loaded Search(%q): %v", q, err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i].UNID != b[i].UNID || a[i].Score != b[i].Score {
				t.Fatalf("query %q hit %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
			av, bv := append([]string(nil), a[i].Readers...), append([]string(nil), b[i].Readers...)
			sort.Strings(av)
			sort.Strings(bv)
			if !reflect.DeepEqual(av, bv) {
				t.Fatalf("query %q readers differ: %v vs %v", q, av, bv)
			}
		}
	}
	// The loaded index remains updatable.
	extra := textNote("late", "arrives after loading")
	loaded.Update(extra)
	if rs, _ := loaded.Search("arrives"); len(rs) != 1 {
		t.Error("loaded index not updatable")
	}
	loaded.Remove(docs[0].OID.UNID)
	if rs, _ := loaded.Search("domino"); len(rs) != 0 {
		t.Error("removal from loaded index failed")
	}
}

func TestSnapshotEmptyIndex(t *testing.T) {
	loaded := snapshotRoundTrip(t, NewIndex())
	if loaded.DocCount() != 0 || loaded.TermCount() != 0 {
		t.Errorf("empty snapshot: %d docs %d terms", loaded.DocCount(), loaded.TermCount())
	}
}

func TestSnapshotLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	ix := NewIndex()
	for i := 0; i < 500; i++ {
		words := make([]string, 3+rng.Intn(30))
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		ix.Update(textNote(fmt.Sprintf("doc %d", i), fmt.Sprint(words)))
	}
	loaded := snapshotRoundTrip(t, ix)
	for _, q := range []string{"alpha", `"beta gamma"`, "delta NOT epsilon"} {
		a, _ := ix.Search(q)
		b, _ := loaded.Search(q)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d", q, len(a), len(b))
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := ReadIndex(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations of a valid snapshot must error, not panic.
	ix := NewIndex()
	ix.Update(textNote("x", "some words here"))
	var buf bytes.Buffer
	ix.WriteTo(&buf)
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
