package ft

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEmptyQuery marks a query that normalizes to nothing — all stopwords,
// punctuation, or whitespace (e.g. "and", "the", "..."). It is not a syntax
// error: Search treats it as matching no documents, while malformed queries
// (unbalanced parens, a bare NOT) keep returning real errors.
var ErrEmptyQuery = errors.New("ft: empty query")

// Query grammar:
//
//	query  = or
//	or     = and { "OR" and }
//	and    = unary { ["AND"] unary }     (juxtaposition is AND)
//	unary  = "NOT" unary | "(" query ")" | phrase | term
//	phrase = '"' words '"'
//
// Operators are case-insensitive. Terms are normalized with the same
// tokenizer as the index.
type qnode interface{ isQuery() }

type qTerm struct{ term string }
type qPhrase struct{ terms []string }
type qAnd struct{ l, r qnode }
type qOr struct{ l, r qnode }
type qNot struct{ x qnode }

func (qTerm) isQuery()   {}
func (qPhrase) isQuery() {}
func (qAnd) isQuery()    {}
func (qOr) isQuery()     {}
func (qNot) isQuery()    {}

type qtoken struct {
	kind string // "word", "phrase", "(", ")"
	text string
}

func lexQuery(s string) ([]qtoken, error) {
	var toks []qtoken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')':
			toks = append(toks, qtoken{kind: string(c)})
			i++
		case c == '"':
			end := strings.IndexByte(s[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("ft: unterminated phrase in query %q", s)
			}
			toks = append(toks, qtoken{kind: "phrase", text: s[i+1 : i+1+end]})
			i += end + 2
		default:
			start := i
			for i < len(s) && !strings.ContainsRune(" \t\n\r()\"", rune(s[i])) {
				i++
			}
			toks = append(toks, qtoken{kind: "word", text: s[start:i]})
		}
	}
	return toks, nil
}

type qparser struct {
	toks []qtoken
	pos  int
}

func (p *qparser) peek() (qtoken, bool) {
	if p.pos >= len(p.toks) {
		return qtoken{}, false
	}
	return p.toks[p.pos], true
}

// parseQuery compiles a query string.
func parseQuery(s string) (qnode, error) {
	toks, err := lexQuery(s)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t, ok := p.peek(); ok {
		return nil, fmt.Errorf("ft: unexpected %q in query", t.text+t.kind)
	}
	if q == nil {
		return nil, ErrEmptyQuery
	}
	return q, nil
}

func (p *qparser) parseOr() (qnode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "word" || !strings.EqualFold(t.text, "or") {
			return l, nil
		}
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return nil, fmt.Errorf("ft: OR needs a right operand")
		}
		if l == nil {
			return nil, fmt.Errorf("ft: OR needs a left operand")
		}
		l = qOr{l: l, r: r}
	}
}

func (p *qparser) parseAnd() (qnode, error) {
	var l qnode
	for {
		t, ok := p.peek()
		if !ok || t.kind == ")" {
			return l, nil
		}
		if t.kind == "word" && strings.EqualFold(t.text, "or") {
			return l, nil
		}
		if t.kind == "word" && strings.EqualFold(t.text, "and") {
			p.pos++
			continue
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if r == nil {
			continue // token normalized away (stopword-only term)
		}
		if l == nil {
			l = r
		} else {
			l = qAnd{l: l, r: r}
		}
	}
}

func (p *qparser) parseUnary() (qnode, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("ft: unexpected end of query")
	}
	switch {
	case t.kind == "word" && strings.EqualFold(t.text, "not"):
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if x == nil {
			return nil, fmt.Errorf("ft: NOT needs an operand")
		}
		return qNot{x: x}, nil
	case t.kind == "(":
		p.pos++
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		t, ok := p.peek()
		if !ok || t.kind != ")" {
			return nil, fmt.Errorf("ft: missing ) in query")
		}
		p.pos++
		return q, nil
	case t.kind == "phrase":
		p.pos++
		terms := tokenize(t.text)
		if len(terms) == 0 {
			return nil, nil
		}
		if len(terms) == 1 {
			return qTerm{term: terms[0]}, nil
		}
		return qPhrase{terms: terms}, nil
	case t.kind == "word":
		p.pos++
		terms := tokenize(t.text)
		if len(terms) == 0 {
			return nil, nil // stopword or punctuation-only
		}
		// A word that tokenizes into several terms (e.g. "mail-routing")
		// behaves like a phrase.
		if len(terms) == 1 {
			return qTerm{term: terms[0]}, nil
		}
		return qPhrase{terms: terms}, nil
	default:
		return nil, fmt.Errorf("ft: unexpected %q in query", t.kind)
	}
}
