// Package ft implements per-database full-text search: an incrementally
// maintained inverted index with positions (for phrase queries), a boolean
// query language (AND, OR, NOT, "phrases"), tf-idf ranking, and a linear
// scan baseline used to validate results and benchmark the index.
package ft

import (
	"strings"
	"unicode"

	"repro/internal/nsf"
)

// stopwords are excluded from the index and from queries.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true, "he": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "to": true, "was": true, "were": true,
	"will": true, "with": true,
}

const maxTermLen = 64

// tokenize splits text into lower-cased index terms, skipping stopwords and
// implausibly long tokens.
func tokenize(text string) []string {
	var out []string
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for _, f := range fields {
		if len(f) == 0 || len(f) > maxTermLen || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// noteTerms extracts the term stream of a note: all text items concatenated
// in item order. Raw items and non-text types are skipped.
func noteTerms(n *nsf.Note) []string {
	var terms []string
	for _, it := range n.Items {
		if it.Value.Type != nsf.TypeText {
			continue
		}
		for _, s := range it.Value.Text {
			terms = append(terms, tokenize(s)...)
		}
	}
	return terms
}
