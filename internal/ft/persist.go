package ft

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/nsf"
)

// Index persistence. The on-disk format is a snapshot of the inverted
// index:
//
//	magic    "FTIDX001"
//	docs     uvarint, then per doc: UNID (16B), reader count uvarint,
//	         readers (len-prefixed strings)
//	terms    uvarint, then per term: term (len-prefixed), doc count uvarint,
//	         per doc: UNID (16B), position count uvarint, positions as
//	         delta-encoded uvarints
//
// Snapshots are written atomically by the caller (write temp + rename).
const persistMagic = "FTIDX001"

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	write := func(b []byte) error {
		_, err := cw.Write(b)
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		return write(scratch[:n])
	}
	writeStr := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		return write([]byte(s))
	}
	if err := write([]byte(persistMagic)); err != nil {
		return cw.n, err
	}
	// Documents and their reader restrictions.
	if err := writeUvarint(uint64(len(ix.docTerms))); err != nil {
		return cw.n, err
	}
	docs := make([]nsf.UNID, 0, len(ix.docTerms))
	for u := range ix.docTerms {
		docs = append(docs, u)
	}
	sort.Slice(docs, func(i, j int) bool { return string(docs[i][:]) < string(docs[j][:]) })
	for _, u := range docs {
		if err := write(u[:]); err != nil {
			return cw.n, err
		}
		readers := ix.docReaders[u]
		if err := writeUvarint(uint64(len(readers))); err != nil {
			return cw.n, err
		}
		for _, r := range readers {
			if err := writeStr(r); err != nil {
				return cw.n, err
			}
		}
	}
	// Postings.
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := writeUvarint(uint64(len(terms))); err != nil {
		return cw.n, err
	}
	for _, t := range terms {
		if err := writeStr(t); err != nil {
			return cw.n, err
		}
		m := ix.postings[t]
		if err := writeUvarint(uint64(len(m))); err != nil {
			return cw.n, err
		}
		for u, positions := range m {
			if err := write(u[:]); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(uint64(len(positions))); err != nil {
				return cw.n, err
			}
			prev := int32(0)
			for _, p := range positions {
				if err := writeUvarint(uint64(p - prev)); err != nil {
					return cw.n, err
				}
				prev = p
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadIndex deserializes a snapshot written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ft: read snapshot: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("ft: bad snapshot magic %q", magic)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readStr := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("ft: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	readUNID := func() (nsf.UNID, error) {
		var u nsf.UNID
		_, err := io.ReadFull(br, u[:])
		return u, err
	}
	ix := NewIndex()
	docCount, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if docCount > 1<<28 {
		return nil, fmt.Errorf("ft: implausible doc count %d", docCount)
	}
	for i := uint64(0); i < docCount; i++ {
		u, err := readUNID()
		if err != nil {
			return nil, err
		}
		nReaders, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nReaders > 1<<16 {
			return nil, fmt.Errorf("ft: implausible reader count %d", nReaders)
		}
		var readers []string
		for j := uint64(0); j < nReaders; j++ {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			readers = append(readers, s)
		}
		ix.docTerms[u] = nil // filled as postings load
		if len(readers) > 0 {
			ix.docReaders[u] = readers
		}
	}
	termCount, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if termCount > 1<<28 {
		return nil, fmt.Errorf("ft: implausible term count %d", termCount)
	}
	for i := uint64(0); i < termCount; i++ {
		term, err := readStr()
		if err != nil {
			return nil, err
		}
		nDocs, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nDocs > docCount {
			return nil, fmt.Errorf("ft: term %q has %d docs of %d", term, nDocs, docCount)
		}
		m := make(map[nsf.UNID][]int32, nDocs)
		for j := uint64(0); j < nDocs; j++ {
			u, err := readUNID()
			if err != nil {
				return nil, err
			}
			if _, known := ix.docTerms[u]; !known {
				return nil, fmt.Errorf("ft: posting references unknown doc %s", u)
			}
			nPos, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if nPos > 1<<24 {
				return nil, fmt.Errorf("ft: implausible position count %d", nPos)
			}
			positions := make([]int32, nPos)
			prev := int32(0)
			for k := range positions {
				d, err := readUvarint()
				if err != nil {
					return nil, err
				}
				prev += int32(d)
				positions[k] = prev
			}
			m[u] = positions
			ix.docTerms[u] = append(ix.docTerms[u], term)
		}
		ix.postings[term] = m
	}
	return ix, nil
}

// Docs returns the indexed document UNIDs (unsorted).
func (ix *Index) Docs() []nsf.UNID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]nsf.UNID, 0, len(ix.docTerms))
	for u := range ix.docTerms {
		out = append(out, u)
	}
	return out
}
