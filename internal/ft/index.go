package ft

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sort"
	"sync"

	"repro/internal/nsf"
)

// Index is an inverted full-text index over a database's documents. It is
// safe for concurrent use.
type Index struct {
	mu sync.RWMutex
	// postings maps term -> document -> positions of the term in the
	// document's token stream.
	postings map[string]map[nsf.UNID][]int32
	// docTerms remembers each document's distinct terms for removal.
	docTerms map[nsf.UNID][]string
	// docReaders carries each document's Reader-item restriction (nil when
	// unrestricted) so searches can be access-filtered without loading
	// notes from the store.
	docReaders map[nsf.UNID][]string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings:   make(map[string]map[nsf.UNID][]int32),
		docTerms:   make(map[nsf.UNID][]string),
		docReaders: make(map[nsf.UNID][]string),
	}
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docTerms)
}

// TermCount returns the number of distinct terms.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Update (re)indexes a note. Deletion stubs and non-documents are removed.
func (ix *Index) Update(n *nsf.Note) {
	if n.IsStub() || n.Class != nsf.ClassDocument {
		ix.Remove(n.OID.UNID)
		return
	}
	terms := noteTerms(n)
	pos := make(map[string][]int32)
	for i, t := range terms {
		pos[t] = append(pos[t], int32(i))
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(n.OID.UNID)
	distinct := make([]string, 0, len(pos))
	for t, ps := range pos {
		m := ix.postings[t]
		if m == nil {
			m = make(map[nsf.UNID][]int32)
			ix.postings[t] = m
		}
		m[n.OID.UNID] = ps
		distinct = append(distinct, t)
	}
	ix.docTerms[n.OID.UNID] = distinct
	if readers := n.Readers(); len(readers) > 0 {
		ix.docReaders[n.OID.UNID] = readers
	}
}

// Remove drops a document from the index.
func (ix *Index) Remove(unid nsf.UNID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(unid)
}

func (ix *Index) removeLocked(unid nsf.UNID) {
	terms, ok := ix.docTerms[unid]
	if !ok {
		return
	}
	for _, t := range terms {
		if m := ix.postings[t]; m != nil {
			delete(m, unid)
			if len(m) == 0 {
				delete(ix.postings, t)
			}
		}
	}
	delete(ix.docTerms, unid)
	delete(ix.docReaders, unid)
}

// Result is one search hit.
type Result struct {
	UNID  nsf.UNID
	Score float64
	// Readers carries the document's Reader-item restriction as of indexing
	// time (nil when unrestricted), for access filtering without a store
	// load.
	Readers []string
}

// Search evaluates query and returns hits ranked by tf-idf score. A query
// that normalizes to nothing (stopwords and punctuation only) matches no
// documents rather than erroring; malformed queries still return errors.
func (ix *Index) Search(query string) ([]Result, error) {
	return ix.SearchCtx(context.Background(), query)
}

// SearchCtx is Search with cooperative cancellation: the deadline is
// checked at every query-tree node and again before the ranking sort, so a
// query whose budget expires mid-evaluation releases the index's read lock
// promptly instead of scoring postings for a caller that already gave up.
func (ix *Index) SearchCtx(ctx context.Context, query string) ([]Result, error) {
	q, err := parseQuery(query)
	if errors.Is(err, ErrEmptyQuery) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	scores, err := ix.evalCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(scores))
	for unid, score := range scores {
		out = append(out, Result{UNID: unid, Score: score, Readers: ix.docReaders[unid]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return bytes.Compare(out[i].UNID[:], out[j].UNID[:]) < 0
	})
	return out, nil
}

// evalCtx walks the query tree like eval, checking the deadline at each
// interior node. Leaf evaluation (one term or phrase's postings) runs
// uninterrupted — it is bounded by a single posting list, while AND/OR/NOT
// trees can multiply that work arbitrarily.
func (ix *Index) evalCtx(ctx context.Context, q qnode) (map[nsf.UNID]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch q := q.(type) {
	case qAnd:
		l, err := ix.evalCtx(ctx, q.l)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return l, nil
		}
		r, err := ix.evalCtx(ctx, q.r)
		if err != nil {
			return nil, err
		}
		out := make(map[nsf.UNID]float64)
		for unid, s := range l {
			if s2, ok := r[unid]; ok {
				out[unid] = s + s2
			}
		}
		return out, nil
	case qOr:
		l, err := ix.evalCtx(ctx, q.l)
		if err != nil {
			return nil, err
		}
		r, err := ix.evalCtx(ctx, q.r)
		if err != nil {
			return nil, err
		}
		out := make(map[nsf.UNID]float64, len(l)+len(r))
		for unid, s := range l {
			out[unid] = s
		}
		for unid, s := range r {
			out[unid] += s
		}
		return out, nil
	case qNot:
		exclude, err := ix.evalCtx(ctx, q.x)
		if err != nil {
			return nil, err
		}
		out := make(map[nsf.UNID]float64)
		for unid := range ix.docTerms {
			if _, ok := exclude[unid]; !ok {
				out[unid] = 0.1 // flat score: NOT carries no relevance signal
			}
		}
		return out, nil
	default:
		return ix.eval(q), nil
	}
}

// eval returns matching documents with scores.
func (ix *Index) eval(q qnode) map[nsf.UNID]float64 {
	switch q := q.(type) {
	case qTerm:
		return ix.evalTerm(q.term)
	case qPhrase:
		return ix.evalPhrase(q.terms)
	case qAnd:
		l := ix.eval(q.l)
		if len(l) == 0 {
			return l
		}
		r := ix.eval(q.r)
		out := make(map[nsf.UNID]float64)
		for unid, s := range l {
			if s2, ok := r[unid]; ok {
				out[unid] = s + s2
			}
		}
		return out
	case qOr:
		l, r := ix.eval(q.l), ix.eval(q.r)
		out := make(map[nsf.UNID]float64, len(l)+len(r))
		for unid, s := range l {
			out[unid] = s
		}
		for unid, s := range r {
			out[unid] += s
		}
		return out
	case qNot:
		exclude := ix.eval(q.x)
		out := make(map[nsf.UNID]float64)
		for unid := range ix.docTerms {
			if _, ok := exclude[unid]; !ok {
				out[unid] = 0.1 // flat score: NOT carries no relevance signal
			}
		}
		return out
	default:
		return nil
	}
}

func (ix *Index) idf(term string) float64 {
	df := len(ix.postings[term])
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(len(ix.docTerms))/float64(df))
}

func (ix *Index) evalTerm(term string) map[nsf.UNID]float64 {
	m := ix.postings[term]
	if m == nil {
		return nil
	}
	idf := ix.idf(term)
	out := make(map[nsf.UNID]float64, len(m))
	for unid, positions := range m {
		out[unid] = (1 + math.Log(float64(len(positions)))) * idf
	}
	return out
}

// evalPhrase matches documents containing the terms consecutively.
func (ix *Index) evalPhrase(terms []string) map[nsf.UNID]float64 {
	if len(terms) == 0 {
		return nil
	}
	first := ix.postings[terms[0]]
	if first == nil {
		return nil
	}
	score := 0.0
	for _, t := range terms {
		score += ix.idf(t)
	}
	out := make(map[nsf.UNID]float64)
	for unid, starts := range first {
		count := 0
	starts:
		for _, p := range starts {
			for off, t := range terms[1:] {
				m := ix.postings[t]
				if m == nil {
					return nil
				}
				if !containsPos(m[unid], p+int32(off)+1) {
					continue starts
				}
			}
			count++
		}
		if count > 0 {
			out[unid] = (1 + math.Log(float64(count))) * score
		}
	}
	return out
}

func containsPos(ps []int32, want int32) bool {
	// Positions are appended in increasing order; binary search.
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ps[mid] < want:
			lo = mid + 1
		case ps[mid] > want:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// ScanSearch is the unindexed baseline: it evaluates query by tokenizing
// every note supplied by scan. Results are unranked (score 1).
func ScanSearch(query string, scan func(fn func(*nsf.Note) bool) error) ([]Result, error) {
	q, err := parseQuery(query)
	if errors.Is(err, ErrEmptyQuery) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Result
	err = scan(func(n *nsf.Note) bool {
		if n.IsStub() || n.Class != nsf.ClassDocument {
			return true
		}
		terms := noteTerms(n)
		pos := make(map[string][]int32)
		for i, t := range terms {
			pos[t] = append(pos[t], int32(i))
		}
		if matchScan(q, pos) {
			out = append(out, Result{UNID: n.OID.UNID, Score: 1})
		}
		return true
	})
	return out, err
}

func matchScan(q qnode, pos map[string][]int32) bool {
	switch q := q.(type) {
	case qTerm:
		return len(pos[q.term]) > 0
	case qPhrase:
		starts := pos[q.terms[0]]
	starts:
		for _, p := range starts {
			for off, t := range q.terms[1:] {
				if !containsPos(pos[t], p+int32(off)+1) {
					continue starts
				}
			}
			return true
		}
		return false
	case qAnd:
		return matchScan(q.l, pos) && matchScan(q.r, pos)
	case qOr:
		return matchScan(q.l, pos) || matchScan(q.r, pos)
	case qNot:
		return !matchScan(q.x, pos)
	default:
		return false
	}
}
