package ft

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/nsf"
)

func textNote(subject, body string) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", subject)
	n.SetText("Body", body)
	return n
}

func unids(rs []Result) []nsf.UNID {
	out := make([]nsf.UNID, len(rs))
	for i, r := range rs {
		out[i] = r.UNID
	}
	return out
}

func hasUNID(rs []Result, u nsf.UNID) bool {
	for _, r := range rs {
		if r.UNID == u {
			return true
		}
	}
	return false
}

func TestTokenize(t *testing.T) {
	got := tokenize("Hello, World! The quick-brown fox_2 jumps")
	want := []string{"hello", "world", "quick", "brown", "fox", "2", "jumps"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokenize = %v, want %v", got, want)
	}
}

func TestBasicSearch(t *testing.T) {
	ix := NewIndex()
	a := textNote("database systems", "replication and recovery in groupware")
	b := textNote("cooking", "slow roast recipes")
	c := textNote("databases again", "the database wins")
	for _, n := range []*nsf.Note{a, b, c} {
		ix.Update(n)
	}
	rs, err := ix.Search("database")
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(rs) != 2 || !hasUNID(rs, a.OID.UNID) || !hasUNID(rs, c.OID.UNID) {
		t.Errorf("database hits = %v", unids(rs))
	}
	rs, _ = ix.Search("roast")
	if len(rs) != 1 || rs[0].UNID != b.OID.UNID {
		t.Errorf("roast hits = %v", unids(rs))
	}
	rs, _ = ix.Search("nosuchterm")
	if len(rs) != 0 {
		t.Errorf("phantom hits = %v", unids(rs))
	}
}

func TestBooleanOperators(t *testing.T) {
	ix := NewIndex()
	a := textNote("x", "alpha beta")
	b := textNote("x", "alpha gamma")
	c := textNote("x", "delta gamma")
	for _, n := range []*nsf.Note{a, b, c} {
		ix.Update(n)
	}
	check := func(q string, want ...nsf.UNID) {
		t.Helper()
		rs, err := ix.Search(q)
		if err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
		got := unids(rs)
		sort.Slice(got, func(i, j int) bool { return got[i].String() < got[j].String() })
		sort.Slice(want, func(i, j int) bool { return want[i].String() < want[j].String() })
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("Search(%q) = %v, want %v", q, got, want)
		}
	}
	check("alpha beta", a.OID.UNID)                // implicit AND
	check("alpha AND beta", a.OID.UNID)            // explicit AND
	check("beta OR delta", a.OID.UNID, c.OID.UNID) // OR
	check("alpha NOT beta", b.OID.UNID)            // AND NOT
	check("NOT alpha", c.OID.UNID)                 // top-level NOT
	check("(beta OR gamma) NOT delta", a.OID.UNID, b.OID.UNID)
	check("alpha AND nosuch")
}

func TestPhraseSearch(t *testing.T) {
	ix := NewIndex()
	a := textNote("x", "the replication engine pulls changes")
	b := textNote("x", "changes pull the engine of replication")
	ix.Update(a)
	ix.Update(b)
	rs, err := ix.Search(`"replication engine"`)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(rs) != 1 || rs[0].UNID != a.OID.UNID {
		t.Errorf("phrase hits = %v", unids(rs))
	}
	// Phrase skips stopwords at tokenization; "engine pulls" still matches.
	rs, _ = ix.Search(`"engine pulls changes"`)
	if len(rs) != 1 || rs[0].UNID != a.OID.UNID {
		t.Errorf("long phrase hits = %v", unids(rs))
	}
}

func TestUpdateAndRemove(t *testing.T) {
	ix := NewIndex()
	n := textNote("x", "original words")
	ix.Update(n)
	if rs, _ := ix.Search("original"); len(rs) != 1 {
		t.Fatal("doc not indexed")
	}
	n.SetText("Body", "replaced words")
	ix.Update(n)
	if rs, _ := ix.Search("original"); len(rs) != 0 {
		t.Error("stale term survived update")
	}
	if rs, _ := ix.Search("replaced"); len(rs) != 1 {
		t.Error("new term not indexed")
	}
	// A stub removes the doc.
	n.Flags |= nsf.FlagDeleted
	ix.Update(n)
	if rs, _ := ix.Search("replaced"); len(rs) != 0 {
		t.Error("stub still searchable")
	}
	if ix.DocCount() != 0 {
		t.Errorf("DocCount = %d", ix.DocCount())
	}
}

func TestRankingPrefersHigherTF(t *testing.T) {
	ix := NewIndex()
	often := textNote("x", "cat cat cat cat dog")
	once := textNote("x", "cat dog bird fish")
	ix.Update(often)
	ix.Update(once)
	rs, _ := ix.Search("cat")
	if len(rs) != 2 || rs[0].UNID != often.OID.UNID {
		t.Errorf("ranking = %v", unids(rs))
	}
}

func TestQueryErrors(t *testing.T) {
	ix := NewIndex()
	for _, q := range []string{`"unterminated`, "(a", "a)", "NOT", "OR a"} {
		if _, err := ix.Search(q); err == nil {
			t.Errorf("Search(%q) succeeded, want error", q)
		}
	}
}

// Queries that normalize to nothing — empty strings, stopwords alone,
// punctuation — are not errors: they match no documents, the way a Notes
// client expects typing "the" into the search bar to behave.
func TestEmptyQueriesMatchNothing(t *testing.T) {
	ix := NewIndex()
	ix.Update(textNote("body", "the quick brown fox"))
	for _, q := range []string{"", "   ", "the", "the of and", "...", "AND", "and and and"} {
		rs, err := ix.Search(q)
		if err != nil {
			t.Errorf("Search(%q) error %v, want empty result", q, err)
		}
		if len(rs) != 0 {
			t.Errorf("Search(%q) = %d hits, want 0", q, len(rs))
		}
	}
	// The typed sentinel is still visible to callers that want to tell the
	// user their query vanished, rather than silently showing no hits.
	if _, err := parseQuery("the of and"); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("parseQuery stopwords err = %v, want ErrEmptyQuery", err)
	}
}

// TestIndexAgreesWithScan cross-checks the inverted index against the
// linear-scan baseline over a random corpus and queries.
func TestIndexAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var notes []*nsf.Note
	ix := NewIndex()
	for i := 0; i < 300; i++ {
		words := make([]string, 5+rng.Intn(20))
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		n := textNote(fmt.Sprintf("doc %d", i), fmt.Sprint(words))
		notes = append(notes, n)
		ix.Update(n)
	}
	scan := func(fn func(*nsf.Note) bool) error {
		for _, n := range notes {
			if !fn(n) {
				break
			}
		}
		return nil
	}
	queries := []string{
		"alpha", "alpha beta", "alpha OR beta", "alpha NOT beta",
		`"alpha beta"`, "(gamma OR delta) NOT epsilon", "zeta eta theta",
	}
	for _, q := range queries {
		indexed, err := ix.Search(q)
		if err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
		scanned, err := ScanSearch(q, scan)
		if err != nil {
			t.Fatalf("ScanSearch(%q): %v", q, err)
		}
		a, b := unids(indexed), unids(scanned)
		sort.Slice(a, func(i, j int) bool { return a[i].String() < a[j].String() })
		sort.Slice(b, func(i, j int) bool { return b[i].String() < b[j].String() })
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q: index %d hits, scan %d hits", q, len(a), len(b))
		}
	}
}
