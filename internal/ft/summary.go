package ft

import "repro/internal/nsf"

// HitSummary is a search hit joined with projected item values, so a hit
// list can render (subject, author, date columns) without a per-hit
// document fetch.
type HitSummary struct {
	Result
	// Values holds one value per requested column, in request order. A
	// column the document lacks is the zero Value (Type 0).
	Values []nsf.Value
}

// JoinSummaries projects the named items onto each hit by loading its
// document through load. Hits whose load fails are dropped — the document
// vanished (or became unreadable) between indexing and the join, and a hit
// list should not surface rows the caller cannot open.
func JoinSummaries(hits []Result, columns []string, load func(nsf.UNID) (*nsf.Note, error)) []HitSummary {
	out := make([]HitSummary, 0, len(hits))
	for _, h := range hits {
		n, err := load(h.UNID)
		if err != nil {
			continue
		}
		vals := make([]nsf.Value, len(columns))
		for i, c := range columns {
			if n.Has(c) {
				vals[i] = n.Get(c)
			}
		}
		out = append(out, HitSummary{Result: h, Values: vals})
	}
	return out
}
