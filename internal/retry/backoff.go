// Package retry is the one jittered-exponential-backoff policy the whole
// system shares. The wire client's reconnect ladder, the replication
// mesh's per-link schedule, and the failover client's breaker cooldown
// all grew their own copies of "double it, cap it, jitter it"; this
// package replaces them with a single set of primitives so the shapes
// stay consistent (and tunable) everywhere.
package retry

import (
	"math/rand"
	"time"
)

// Exp returns base << attempt capped at max. attempt is 0-based: attempt 0
// returns base. Overflowed shifts and non-positive results cap at max, so
// a pathological attempt count can never wrap into a zero or negative
// delay.
func Exp(base time.Duration, attempt int, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base
	if attempt >= 63 {
		d = max
	} else {
		d = base << uint(attempt)
	}
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// JitterUp spreads d one-sidedly into [d, d*(1+frac)]: the delay never
// shrinks, so minimum spacing guarantees survive, but synchronized peers
// de-phase. A nil rng uses the global source.
func JitterUp(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	span := int64(float64(d) * frac)
	if span <= 0 {
		return d
	}
	if rng == nil {
		return d + time.Duration(rand.Int63n(span+1))
	}
	return d + time.Duration(rng.Int63n(span+1))
}

// JitterAround spreads d symmetrically into [d*(1-frac), d*(1+frac)):
// the classic anti-stampede jitter for retry sleeps, where shrinking a
// delay is as useful as stretching it. A nil rng uses the global source.
func JitterAround(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	span := int64(float64(d) * frac * 2)
	if span <= 0 {
		return d
	}
	base := d - time.Duration(span/2)
	if rng == nil {
		return base + time.Duration(rand.Int63n(span))
	}
	return base + time.Duration(rng.Int63n(span))
}

// Backoff is the standard retry-sleep policy: exponential from Base,
// capped at Max, with ±50% jitter. The zero value is unusable; fill Base
// and Max.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	// Rand seeds the jitter; nil uses the global source. Tests pass a
	// seeded source for reproducible schedules.
	Rand *rand.Rand
}

// Delay returns the sleep before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	return JitterAround(b.Rand, Exp(b.Base, attempt, b.Max), 0.5)
}
