// Package place is the rebalancer: it moves a database between cluster
// mates while the database stays online, and re-homes databases off a dead
// mate. A move is composed entirely from machinery the server already has —
// hot backup for the bulk image, catch-up replication for the delta, the
// admission controller's Quiesce fence for the final cut-over — and commits
// by a compare-and-swap on the directory's generation-stamped placement
// record, so exactly one move wins per generation no matter how many
// rebalancers race.
//
// Move state machine:
//
//	IMAGE    src.BackupDB (hot, full) -> dst.RestoreDB  [skipped if dst holds a copy]
//	CATCHUP  repl.Replicate(src -> dst) until a round moves nothing,
//	         re-kicked by a ChangeTrigger while writers keep committing
//	FENCE    src.Quiesce: drain in-flight ops, shed new ones (retryable)
//	DELTA    one final replication pass over the now-quiet source
//	FLIP     dir.UpdatePlacement CAS at the generation read at start;
//	         conflict => another move won, this one aborts cleanly
//	RESUME   src.Resume; redirected clients re-resolve to the new home
//
// An aborted move may leave a restored copy on the target. That is harmless:
// placement enforcement means a non-home mate redirects opens rather than
// serving them, and a later move re-uses the copy as its image.
package place

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/backup"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/repl"
	"repro/internal/server"
)

// ErrNotHomed reports that the move's source no longer homes the database —
// the placement record changed under the mover (usually a racing move won).
var ErrNotHomed = errors.New("place: source does not home database")

// MoveOptions tunes a live move.
type MoveOptions struct {
	// BackupRoot is where the bulk image is written ("" uses a directory
	// next to the source's data under os.TempDir is NOT assumed — the
	// caller must provide a root; moves between servers on one host can
	// share the scheduled-backup root so images are reused).
	BackupRoot string
	// CatchupRounds bounds the pre-fence replication loop (default 16).
	CatchupRounds int
	// QuiesceTimeout bounds the drain fence (default 10s).
	QuiesceTimeout time.Duration
	// Replicas overrides the placement record's replica factor
	// (0 keeps the home-set size).
	Replicas int
	// Log receives progress lines ("" is discarded).
	Log func(format string, args ...any)
}

// MoveResult describes a committed move (or re-home).
type MoveResult struct {
	Path       string
	From       []string // home set before the flip
	To         []string // home set after the flip
	Generation uint64   // generation the flip committed
	Rounds     int      // catch-up replication rounds before the fence
	Moved      int      // notes carried by catch-up + final delta
	Elapsed    time.Duration
}

// moveKey serializes moves per (source, path) inside one process; the
// directory CAS is the cross-process backstop.
type moveKey struct {
	src  *server.Server
	path string
}

var moveLocks sync.Map // moveKey -> *sync.Mutex

func lockFor(src *server.Server, path string) *sync.Mutex {
	k := moveKey{src, strings.ToLower(path)}
	mu, _ := moveLocks.LoadOrStore(k, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

func logf(opts *MoveOptions, format string, args ...any) {
	if opts.Log != nil {
		opts.Log(format, args...)
	}
}

// rehome swaps old for new in a home set, preserving order and dropping
// duplicates. A home set that never contained old gains new at the end.
func rehome(home []string, oldName, newName string) []string {
	out := make([]string, 0, len(home)+1)
	seen := false
	for _, h := range home {
		switch {
		case strings.EqualFold(h, oldName):
			if !seen && !containsFold(out, newName) {
				out = append(out, newName)
			}
			seen = true
		case !containsFold(out, h):
			out = append(out, h)
		}
	}
	if !containsFold(out, newName) {
		out = append(out, newName)
	}
	return out
}

func containsFold(xs []string, want string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, want) {
			return true
		}
	}
	return false
}

// Move relocates one database from src to dst while both serve traffic,
// then flips the placement record so clients re-route. Acked writes are
// never lost: every write acknowledged before the flip is either replicated
// by the fenced final delta, or was shed retryably during the fence and
// lands on the new home after the client's redirect.
func Move(d *dir.Directory, src, dst *server.Server, path string, opts MoveOptions) (MoveResult, error) {
	start := time.Now()
	res := MoveResult{Path: path}
	if d == nil || src == nil || dst == nil {
		return res, errors.New("place: directory and both servers are required")
	}
	if src == dst || strings.EqualFold(src.Name(), dst.Name()) {
		return res, errors.New("place: source and target are the same mate")
	}
	if opts.CatchupRounds <= 0 {
		opts.CatchupRounds = 16
	}
	if opts.QuiesceTimeout <= 0 {
		opts.QuiesceTimeout = 10 * time.Second
	}

	mu := lockFor(src, path)
	mu.Lock()
	defer mu.Unlock()

	// Read the placement this move commits against. The CAS at the end
	// only succeeds if no other mover flipped it in between.
	var expectGen uint64
	var from []string
	if cur, ok := d.GetPlacement(path); ok {
		expectGen = cur.Generation
		from = cur.Home
		if !cur.HasHome(src.Name()) {
			return res, fmt.Errorf("%w: %s is homed on %s, not %s (gen %d): %w",
				ErrNotHomed, path, strings.Join(cur.Home, ","), src.Name(), cur.Generation,
				dir.ErrPlacementConflict)
		}
	}
	res.From = from
	newHome := rehome(from, src.Name(), dst.Name())

	srcDB, ok := src.DB(path)
	if !ok {
		return res, fmt.Errorf("place: source %s does not hold %s", src.Name(), path)
	}

	// IMAGE: materialize the bulk of the database on the target via a hot
	// backup image. A copy already on the target (from an aborted move or
	// standing replication) is reused as-is; catch-up closes the gap.
	dstDB, ok := dst.DB(path)
	if !ok {
		if opts.BackupRoot == "" {
			return res, errors.New("place: BackupRoot required when the target holds no copy")
		}
		if _, err := src.BackupDB(path, opts.BackupRoot, true); err != nil {
			return res, fmt.Errorf("place: image: %w", err)
		}
		setDir, err := server.BackupSetDir(opts.BackupRoot, path)
		if err != nil {
			return res, err
		}
		if _, err := dst.RestoreDB(path, setDir, backup.RestoreOptions{}); err != nil {
			return res, fmt.Errorf("place: restore on %s: %w", dst.Name(), err)
		}
		if dstDB, ok = dst.DB(path); !ok {
			return res, fmt.Errorf("place: %s missing after restore on %s", path, dst.Name())
		}
		logf(&opts, "move %s: imaged onto %s", path, dst.Name())
	}

	peer := &repl.LocalPeer{DB: dstDB}
	ropts := repl.Options{PeerName: "move:" + strings.ToLower(dst.Name())}

	// CATCHUP: replicate the delta while writers keep going. The change
	// trigger re-arms each round so a steady writer doesn't force a full
	// CatchupRounds spin when the delta is already drained.
	trig := repl.NewChangeTrigger(srcDB, time.Millisecond)
	defer trig.Stop()
	for res.Rounds < opts.CatchupRounds {
		res.Rounds++
		st, err := repl.Replicate(srcDB, peer, ropts)
		if err != nil {
			return res, fmt.Errorf("place: catch-up round %d: %w", res.Rounds, err)
		}
		moved := st.Push.Total() + st.Pull.Total()
		res.Moved += moved
		if moved == 0 {
			break
		}
		select {
		case <-trig.C():
		case <-time.After(10 * time.Millisecond):
		}
	}
	logf(&opts, "move %s: caught up in %d rounds (%d notes)", path, res.Rounds, res.Moved)

	// FENCE + DELTA: drain the source so nothing is in flight, carry the
	// final delta, and flip placement before the source serves again.
	if err := src.Quiesce(opts.QuiesceTimeout); err != nil {
		return res, fmt.Errorf("place: fence: %w", err)
	}
	defer src.Resume()
	st, err := repl.Replicate(srcDB, peer, ropts)
	if err != nil {
		return res, fmt.Errorf("place: final delta: %w", err)
	}
	res.Moved += st.Push.Total() + st.Pull.Total()

	// FLIP: commit at the generation read at start. A conflict means a
	// racing mover already won this generation; abort with the source
	// intact (Resume runs via defer).
	p, err := d.UpdatePlacement(path, expectGen, newHome, opts.Replicas)
	if err != nil {
		return res, fmt.Errorf("place: flip %s at gen %d: %w", path, expectGen, err)
	}
	res.To = p.Home
	res.Generation = p.Generation
	res.Elapsed = time.Since(start)
	logf(&opts, "move %s: %s -> %s committed at gen %d (%s)",
		path, strings.Join(res.From, ","), strings.Join(res.To, ","), res.Generation, res.Elapsed)
	return res, nil
}

// RecoverOptions tunes a dead-mate re-home.
type RecoverOptions struct {
	// BackupRoot holds the dead mate's backup sets (required unless the
	// target already has a copy of the database).
	BackupRoot string
	// DeadDataDir, when non-empty, points at the dead mate's surviving
	// data directory; Recover opens the file directly and replicates the
	// post-backup delta into the new home (media recovery's last mile).
	DeadDataDir string
	// Replicas overrides the replica factor (0 keeps the home-set size).
	Replicas int
	// Log receives progress lines.
	Log func(format string, args ...any)
}

// Recover re-homes one database from a dead mate onto dst: restore the most
// recent backup image, optionally catch up from the dead mate's on-disk
// file, and CAS the placement record so deadName is replaced by dst. The
// same exactly-one-winner rule applies — concurrent recoveries of one
// database commit a single generation.
func Recover(d *dir.Directory, deadName string, dst *server.Server, path string, opts RecoverOptions) (MoveResult, error) {
	start := time.Now()
	res := MoveResult{Path: path}
	if d == nil || dst == nil {
		return res, errors.New("place: directory and target server are required")
	}
	if strings.EqualFold(deadName, dst.Name()) {
		return res, errors.New("place: cannot recover a mate onto itself")
	}

	var expectGen uint64
	var from []string
	if cur, ok := d.GetPlacement(path); ok {
		expectGen = cur.Generation
		from = cur.Home
		if !cur.HasHome(deadName) {
			return res, fmt.Errorf("%w: %s is homed on %s, not dead mate %s: %w",
				ErrNotHomed, path, strings.Join(cur.Home, ","), deadName, dir.ErrPlacementConflict)
		}
	}
	res.From = from
	newHome := rehome(from, deadName, dst.Name())

	dstDB, ok := dst.DB(path)
	if !ok {
		if opts.BackupRoot == "" {
			return res, errors.New("place: BackupRoot required when the target holds no copy")
		}
		setDir, err := server.BackupSetDir(opts.BackupRoot, path)
		if err != nil {
			return res, err
		}
		if _, err := dst.RestoreDB(path, setDir, backup.RestoreOptions{}); err != nil {
			return res, fmt.Errorf("place: restore on %s: %w", dst.Name(), err)
		}
		if dstDB, ok = dst.DB(path); !ok {
			return res, fmt.Errorf("place: %s missing after restore on %s", path, dst.Name())
		}
		logf2(&opts, "recover %s: restored image onto %s", path, dst.Name())
	}

	// Carry the post-backup delta straight off the dead mate's file when
	// its disk survived the crash.
	if opts.DeadDataDir != "" {
		full := filepath.Join(opts.DeadDataDir, filepath.FromSlash(path))
		dead, err := core.Open(full, core.Options{})
		if err == nil {
			st, rerr := repl.Replicate(dead, &repl.LocalPeer{DB: dstDB},
				repl.Options{PeerName: "recover:" + strings.ToLower(dst.Name())})
			cerr := dead.Close()
			if rerr != nil {
				return res, fmt.Errorf("place: dead-file catch-up: %w", rerr)
			}
			if cerr != nil {
				return res, fmt.Errorf("place: closing dead file: %w", cerr)
			}
			res.Moved = st.Push.Total() + st.Pull.Total()
			res.Rounds = 1
			logf2(&opts, "recover %s: caught up %d notes from dead file", path, res.Moved)
		} else {
			logf2(&opts, "recover %s: dead file unreadable (%v); image only", path, err)
		}
	}

	p, err := d.UpdatePlacement(path, expectGen, newHome, opts.Replicas)
	if err != nil {
		return res, fmt.Errorf("place: flip %s at gen %d: %w", path, expectGen, err)
	}
	res.To = p.Home
	res.Generation = p.Generation
	res.Elapsed = time.Since(start)
	logf2(&opts, "recover %s: %s -> %s committed at gen %d (%s)",
		path, strings.Join(res.From, ","), strings.Join(res.To, ","), res.Generation, res.Elapsed)
	return res, nil
}

func logf2(opts *RecoverOptions, format string, args ...any) {
	if opts.Log != nil {
		opts.Log(format, args...)
	}
}
