package place_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
	"repro/internal/place"
	"repro/internal/server"
	"repro/internal/wire"
)

const dbPath = "apps/db.nsf"

// rig is a small cluster sharing one directory: every mate knows every
// other mate's address, and apps/db.nsf is opened (same replica ID) on the
// mates named in holders.
type rig struct {
	d       *dir.Directory
	srv     map[string]*server.Server
	addr    map[string]string
	data    map[string]string
	replica nsf.ReplicaID
}

func newRig(t *testing.T, names, holders []string) *rig {
	t.Helper()
	r := &rig{
		d:       dir.New(),
		srv:     map[string]*server.Server{},
		addr:    map[string]string{},
		data:    map[string]string{},
		replica: nsf.NewReplicaID(),
	}
	r.d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	for _, name := range names {
		r.d.AddUser(dir.User{Name: name, Secret: name + "-secret"})
		r.data[name] = filepath.Join(t.TempDir(), name)
		s, err := server.New(server.Options{
			Name: name, DataDir: r.data[name], Directory: r.d, PeerSecret: name + "-secret",
		})
		if err != nil {
			t.Fatal(err)
		}
		r.srv[name] = s
		t.Cleanup(func() { s.Close() })
	}
	for _, name := range holders {
		db, err := r.srv[name].OpenDB(dbPath, core.Options{Title: "db", ReplicaID: r.replica})
		if err != nil {
			t.Fatal(err)
		}
		db.ACL().Set("ada", acl.Editor)
		for _, m := range names {
			db.ACL().Set(m, acl.Editor)
		}
	}
	for _, name := range names {
		addr, err := r.srv[name].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		r.addr[name] = addr
	}
	for _, name := range names {
		peers := map[string]string{}
		for _, other := range names {
			if other != name {
				peers[other] = r.addr[other]
			}
		}
		r.srv[name].SetPeers(peers)
	}
	return r
}

func (r *rig) addrs(names ...string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, r.addr[n])
	}
	return out
}

func (r *rig) db(t *testing.T, name string) *core.Database {
	t.Helper()
	db, ok := r.srv[name].DB(dbPath)
	if !ok {
		t.Fatalf("%s does not hold %s", name, dbPath)
	}
	return db
}

func fastOpts() wire.Options {
	return wire.Options{
		MaxRetries:  -1,
		DialTimeout: 2 * time.Second,
		OpTimeout:   5 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// ackedWriter streams single-document creates through a failover handle
// until stopped, using the ambiguous-create recovery discipline: a failed
// create is re-issued unless a read-back proves it landed. Every UNID it
// returns was acknowledged (directly or by the read-back).
type ackedWriter struct {
	mu    sync.Mutex
	unids []nsf.UNID
	stop  atomic.Bool
	done  chan struct{}
}

func startWriter(t *testing.T, db *wire.FailoverDB) *ackedWriter {
	w := &ackedWriter{done: make(chan struct{})}
	go func() {
		defer close(w.done)
		for i := 0; !w.stop.Load(); i++ {
			n := nsf.NewNote(nsf.ClassDocument)
			n.SetText("Subject", fmt.Sprintf("doc-%d", i))
			for attempt := 0; ; attempt++ {
				if err := db.Create(n); err == nil {
					break
				}
				if _, gerr := db.Get(n.OID.UNID); gerr == nil {
					break // ambiguous create actually landed
				}
				if attempt > 5000 {
					t.Errorf("doc-%d never acked", i)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			w.mu.Lock()
			w.unids = append(w.unids, n.OID.UNID)
			w.mu.Unlock()
		}
	}()
	return w
}

func (w *ackedWriter) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.unids)
}

func (w *ackedWriter) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for w.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("writer stuck at %d acked writes, want %d", w.count(), n)
		}
		select {
		case <-w.done:
			t.Fatalf("writer exited early at %d acked writes", w.count())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (w *ackedWriter) finish() []nsf.UNID {
	w.stop.Store(true)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]nsf.UNID(nil), w.unids...)
}

func auditAcked(t *testing.T, db *core.Database, unids []nsf.UNID) {
	t.Helper()
	lost := 0
	for _, u := range unids {
		if _, err := db.RawGet(u); err != nil {
			lost++
		}
	}
	if lost > 0 {
		t.Errorf("%d of %d acked writes lost after move", lost, len(unids))
	}
}

// TestLiveMoveZeroLostAckedWrites is the headline: a database moves between
// mates while a client streams writes through a failover handle with a
// placement cache that goes stale mid-move. The client transparently
// re-resolves after the flip (WrongMate redirect), keeps writing, and at the
// end every acknowledged write exists on the new home.
func TestLiveMoveZeroLostAckedWrites(t *testing.T) {
	r := newRig(t, []string{"alpha", "beta"}, []string{"alpha"})
	if _, err := r.d.SetPlacement(dbPath, []string{"alpha"}, 1); err != nil {
		t.Fatal(err)
	}

	fc, err := wire.DialFailover(r.addrs("alpha", "beta"), "ada", "ada-pw",
		wire.FailoverOptions{Client: fastOpts(), Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB(dbPath)
	if err != nil {
		t.Fatal(err)
	}

	// A second handle left idle across the move: its cached placement goes
	// stale and its first post-move write must hit the resumed source and be
	// redirected — deterministically, unlike the streaming writer, whose op
	// may instead land in the quiesce window (busy shed) or ride a reconnect.
	fc2, err := wire.DialFailover(r.addrs("alpha", "beta"), "ada", "ada-pw",
		wire.FailoverOptions{Client: fastOpts(), Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc2.Close()
	db2, err := fc2.OpenDB(dbPath)
	if err != nil {
		t.Fatal(err)
	}

	w := startWriter(t, db)
	w.waitFor(t, 15)

	res, err := place.Move(r.d, r.srv["alpha"], r.srv["beta"], dbPath,
		place.MoveOptions{BackupRoot: t.TempDir(), QuiesceTimeout: 5 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if res.Generation != 2 || len(res.To) != 1 || res.To[0] != "beta" {
		t.Fatalf("move result = %+v", res)
	}

	// The writer must keep acking after the flip — through the redirect.
	// Count from AFTER Move returns: acks landed during catch-up would
	// otherwise satisfy the target with no post-flip op ever issued.
	atMove := w.count()
	w.waitFor(t, atMove+10)
	acked := w.finish()

	p, ok := r.d.GetPlacement(dbPath)
	if !ok || p.Generation != 2 || len(p.Home) != 1 || p.Home[0] != "beta" {
		t.Fatalf("placement after move = %+v", p)
	}
	auditAcked(t, r.db(t, "beta"), acked)
	// The streaming writer was re-routed by some transparent mechanism: a
	// WrongMate redirect after the flip, a busy shed during the fence, or a
	// transport failover whose rebind adopted the carried record.
	if st := fc.Stats(); st.WrongMateRedirects+st.BusyRedirects+st.Failovers == 0 {
		t.Error("stale streaming client was never re-routed")
	}
	// The idle handle's cache is definitely stale; its write must be
	// redirected by the resumed source and still succeed on the new home.
	late := nsf.NewNote(nsf.ClassDocument)
	late.SetText("Subject", "after-move")
	if err := db2.Create(late); err != nil {
		t.Fatalf("stale idle client create after move: %v", err)
	}
	if st := fc2.Stats(); st.WrongMateRedirects == 0 {
		t.Error("stale idle client produced no WrongMate redirect")
	}
	if _, err := r.db(t, "beta").RawGet(late.OID.UNID); err != nil {
		t.Errorf("post-move write missing on new home: %v", err)
	}
	// The source resumed and redirects rather than serving or hanging.
	if _, err := wire.ResolvePlacement(r.addr["alpha"], dbPath, nil, 0); err != nil {
		t.Errorf("source not serving resolves after move: %v", err)
	}
}

// TestConcurrentMovesExactlyOneWinner races two movers for the same
// database against a stream of PutBatch writers: exactly one move commits,
// the placement advances exactly one generation, and every acknowledged
// batch lands on the winning home. Run under -race (make stress).
func TestConcurrentMovesExactlyOneWinner(t *testing.T) {
	r := newRig(t, []string{"alpha", "beta", "gamma"}, []string{"alpha"})
	if _, err := r.d.SetPlacement(dbPath, []string{"alpha"}, 1); err != nil {
		t.Fatal(err)
	}

	fc, err := wire.DialFailover(r.addrs("alpha", "beta", "gamma"), "ada", "ada-pw",
		wire.FailoverOptions{Client: fastOpts(), Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB(dbPath)
	if err != nil {
		t.Fatal(err)
	}

	// PutBatch writers: acked batches recorded by UNID; the batch cursor
	// plus create-or-update semantics make whole-batch retries safe.
	var mu sync.Mutex
	var acked []nsf.UNID
	var stop atomic.Bool
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for i := 0; !stop.Load(); i++ {
			notes := make([]*nsf.Note, 4)
			for j := range notes {
				n := nsf.NewNote(nsf.ClassDocument)
				n.SetText("Subject", fmt.Sprintf("batch-%d-%d", i, j))
				notes[j] = n
			}
			for attempt := 0; ; attempt++ {
				if _, err := db.PutBatch(notes); err == nil {
					break
				}
				if attempt > 5000 {
					t.Errorf("batch %d never acked", i)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			mu.Lock()
			for _, n := range notes {
				acked = append(acked, n.OID.UNID)
			}
			mu.Unlock()
		}
	}()

	targets := []string{"beta", "gamma"}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = place.Move(r.d, r.srv["alpha"], r.srv[tgt], dbPath,
				place.MoveOptions{BackupRoot: t.TempDir(), QuiesceTimeout: 5 * time.Second})
		}()
	}
	wg.Wait()
	stop.Store(true)
	<-writersDone

	var winner string
	wins := 0
	for i, tgt := range targets {
		if errs[i] == nil {
			wins++
			winner = tgt
		} else if !errors.Is(errs[i], dir.ErrPlacementConflict) {
			t.Errorf("loser %s failed with %v, want placement conflict", tgt, errs[i])
		}
	}
	if wins != 1 {
		t.Fatalf("%d moves won, want exactly 1 (errs: %v)", wins, errs)
	}
	p, ok := r.d.GetPlacement(dbPath)
	if !ok || p.Generation != 2 || len(p.Home) != 1 || p.Home[0] != winner {
		t.Fatalf("placement = %+v, want gen 2 home [%s]", p, winner)
	}

	mu.Lock()
	all := append([]nsf.UNID(nil), acked...)
	mu.Unlock()
	auditAcked(t, r.db(t, winner), all)
}

// TestRecoverDeadMate re-homes a database off a killed mate: restore its
// last backup image on a survivor, carry the post-backup delta straight off
// the dead data directory, and flip placement — no write that reached the
// dead mate's disk is lost.
func TestRecoverDeadMate(t *testing.T) {
	r := newRig(t, []string{"alpha", "beta"}, []string{"alpha"})
	if _, err := r.d.SetPlacement(dbPath, []string{"alpha"}, 1); err != nil {
		t.Fatal(err)
	}
	backupRoot := t.TempDir()

	alphaDB := r.db(t, "alpha")
	var unids []nsf.UNID
	write := func(k int) {
		for i := 0; i < k; i++ {
			n := nsf.NewNote(nsf.ClassDocument)
			n.SetText("Subject", fmt.Sprintf("doc-%d", len(unids)))
			if err := alphaDB.RawPut(n); err != nil {
				t.Fatal(err)
			}
			unids = append(unids, n.OID.UNID)
		}
	}
	write(10)
	if _, err := r.srv["alpha"].BackupDB(dbPath, backupRoot, true); err != nil {
		t.Fatal(err)
	}
	write(5) // delta beyond the image, only on alpha's disk

	if err := r.srv["alpha"].Close(); err != nil {
		t.Fatal(err)
	}

	res, err := place.Recover(r.d, "alpha", r.srv["beta"], dbPath, place.RecoverOptions{
		BackupRoot:  backupRoot,
		DeadDataDir: r.data["alpha"],
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if res.Generation != 2 || len(res.To) != 1 || res.To[0] != "beta" {
		t.Fatalf("recover result = %+v", res)
	}
	auditAcked(t, r.db(t, "beta"), unids)
	p, _ := r.d.GetPlacement(dbPath)
	if p.Generation != 2 || len(p.Home) != 1 || p.Home[0] != "beta" {
		t.Fatalf("placement after recover = %+v", p)
	}
}

// TestMoveReusesExistingCopy: when the target already replicates the
// database (a standing cluster replica), Move skips the image stage and
// needs no BackupRoot.
func TestMoveReusesExistingCopy(t *testing.T) {
	r := newRig(t, []string{"alpha", "beta"}, []string{"alpha", "beta"})
	if _, err := r.d.SetPlacement(dbPath, []string{"alpha"}, 1); err != nil {
		t.Fatal(err)
	}
	alphaDB := r.db(t, "alpha")
	var unids []nsf.UNID
	for i := 0; i < 8; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc-%d", i))
		if err := alphaDB.RawPut(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	res, err := place.Move(r.d, r.srv["alpha"], r.srv["beta"], dbPath, place.MoveOptions{})
	if err != nil {
		t.Fatalf("move without BackupRoot onto standing replica: %v", err)
	}
	if res.Moved < len(unids) {
		t.Errorf("catch-up moved %d notes, want >= %d", res.Moved, len(unids))
	}
	auditAcked(t, r.db(t, "beta"), unids)
}
