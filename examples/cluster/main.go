// Cluster: two servers in a cluster. Saves on the primary stream to the
// mate within moments (event-driven push), the catalog task inventories
// the data directory, and log.nsf records what the servers did.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	domino "repro"
)

func main() {
	base, err := os.MkdirTemp("", "domino-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	d.AddUser(domino.User{Name: "alpha", Secret: "srv-a"})
	d.AddUser(domino.User{Name: "beta", Secret: "srv-b"})

	alpha, err := domino.NewServer(domino.ServerOptions{
		Name: "alpha", DataDir: filepath.Join(base, "alpha"),
		Directory: d, PeerSecret: "srv-a",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer alpha.Close()
	beta, err := domino.NewServer(domino.ServerOptions{
		Name: "beta", DataDir: filepath.Join(base, "beta"),
		Directory: d, PeerSecret: "srv-b",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer beta.Close()
	alphaAddr, err := alpha.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	_ = alphaAddr
	betaAddr, err := beta.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// The clustered database exists on both servers as replicas.
	replica := domino.NewReplicaID()
	dbA, err := alpha.OpenDB("apps/orders.nsf", domino.Options{Title: "Orders", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	dbB, err := beta.OpenDB("apps/orders.nsf", domino.Options{Title: "Orders", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	// Cluster mates authenticate as servers; they need Editor to apply.
	dbA.ACL().Set("beta", domino.Editor)
	dbB.ACL().Set("alpha", domino.Editor)

	// Turn on event-driven push from alpha to beta.
	alpha.EnableClustering(map[string]string{"beta": betaAddr})
	fmt.Println("cluster push enabled: alpha -> beta")

	// Saves on alpha appear on beta without any scheduled replication.
	sess := dbA.Session("ada")
	start := time.Now()
	for i := 1; i <= 5; i++ {
		order := domino.NewDocument()
		order.SetText("Form", "Order")
		order.SetText("Subject", fmt.Sprintf("order #%d", i))
		order.SetNumber("Amount", float64(100*i))
		if err := sess.Create(order); err != nil {
			log.Fatal(err)
		}
	}
	// Wait for the mate to catch up.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		count := 0
		dbB.ScanAll(func(n *domino.Note) bool {
			if n.Class == domino.ClassDocument && !n.IsStub() {
				count++
			}
			return true
		})
		if count == 5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("5 orders visible on beta %.0f ms after the saves on alpha\n",
		time.Since(start).Seconds()*1000)

	// The catalog task inventories alpha's databases.
	if _, err := alpha.RefreshCatalog(); err != nil {
		log.Fatal(err)
	}
	cat, _ := alpha.DB("catalog.nsf")
	fmt.Println("\nalpha's database catalog:")
	cat.ScanAll(func(n *domino.Note) bool {
		if n.Text("Form") == "Catalog" {
			fmt.Printf("  %-18s %-12q %s notes\n",
				n.Text("Path"), n.Text("Title"), n.Get("Notes").String())
		}
		return true
	})

	// log.nsf recorded the cluster sessions.
	alpha.LogEvent("admin", "example finished", nil)
	logDB, _ := alpha.DB("log.nsf")
	events := 0
	logDB.ScanAll(func(n *domino.Note) bool {
		if n.Text("Form") == "LogEvent" {
			events++
		}
		return true
	})
	fmt.Printf("\nalpha's log.nsf holds %d event documents\n", events)
}
