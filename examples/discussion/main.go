// Discussion: a threaded discussion database — the workload Notes was born
// for. Demonstrates categorized views over threads, concurrent edits on two
// replicas producing a replication conflict, and field-level merge
// resolving a disjoint edit.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	domino "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "domino-discussion")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	replica := domino.NewReplicaID()
	hq, err := domino.Open(filepath.Join(dir, "hq.nsf"),
		domino.Options{Title: "Discussion (HQ)", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer hq.Close()
	branch, err := domino.Open(filepath.Join(dir, "branch.nsf"),
		domino.Options{Title: "Discussion (Branch)", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer branch.Close()

	// --- seed threads at HQ ---
	ada := hq.Session("ada")
	topics := map[string][]string{
		"Databases": {"Why replicate documents?", "View indexing tricks"},
		"Coffee":    {"Best beans near the office"},
	}
	for cat, subjects := range topics {
		for _, subj := range subjects {
			topic := domino.NewDocument()
			topic.SetText("Form", "Topic")
			topic.SetText("Category", cat)
			topic.SetText("Subject", subj)
			topic.SetText("Body", "Opening post for: "+subj)
			if err := ada.Create(topic); err != nil {
				log.Fatal(err)
			}
			// Two replies per topic.
			for i := 1; i <= 2; i++ {
				reply := domino.NewDocument()
				reply.SetText("Form", "Response")
				reply.SetText("Category", cat)
				reply.SetText("Subject", fmt.Sprintf("Re: %s (%d)", subj, i))
				reply.SetText("$Ref", topic.OID.UNID.String())
				if err := ada.Create(reply); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// --- a categorized view: category › topics and responses ---
	def, err := domino.NewView("threads", "SELECT @All",
		domino.ViewColumn{Title: "Category", ItemName: "Category", Categorized: true},
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true},
		domino.ViewColumn{Title: "Kind", ItemName: "Form"})
	if err != nil {
		log.Fatal(err)
	}
	if err := hq.AddView(nil, def); err != nil {
		log.Fatal(err)
	}
	rows, _ := ada.Rows("threads")
	fmt.Println("categorized discussion view:")
	for _, r := range rows {
		if r.Entry == nil {
			fmt.Printf("%*s[%s]\n", r.Indent*2, "", r.Category)
		} else {
			fmt.Printf("%*s%s (%s)\n", r.Indent*2, "", r.Entry.ColumnText(1), r.Entry.ColumnText(2))
		}
	}

	// --- the same documents as a response hierarchy (threaded view) ---
	threaded, err := domino.NewView("by thread", "SELECT @All",
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		log.Fatal(err)
	}
	threaded.ShowResponses = true
	if err := hq.AddView(nil, threaded); err != nil {
		log.Fatal(err)
	}
	rows, _ = ada.Rows("by thread")
	fmt.Println("\nthreaded view (responses nest under their parents):")
	for _, r := range rows {
		fmt.Printf("%*s%s\n", r.Indent*2, "", r.Entry.ColumnText(0))
	}

	// --- replicate to the branch office ---
	syncOpts := domino.ReplicationOptions{
		PeerName: "hq", Apply: domino.ApplyOptions{FieldMerge: true},
	}
	if _, err := domino.Replicate(branch, &domino.LocalPeer{DB: hq}, syncOpts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbranch replica now has %d notes\n", branch.Count())

	// --- concurrent edits: overlapping edit -> conflict document ---
	var contested domino.UNID
	ada.All(func(n *domino.Note) bool {
		if n.Text("Form") == "Topic" {
			contested = n.OID.UNID
			return false
		}
		return true
	})
	hqDoc, _ := hq.Session("ada").Get(contested)
	hqDoc.SetText("Body", "HQ says: replication is pull-based")
	if err := hq.Session("ada").Update(hqDoc); err != nil {
		log.Fatal(err)
	}
	brDoc, _ := branch.Session("bob").Get(contested)
	brDoc.SetText("Body", "Branch says: replication is push-based")
	if err := branch.Session("bob").Update(brDoc); err != nil {
		log.Fatal(err)
	}
	stats, err := domino.Replicate(branch, &domino.LocalPeer{DB: hq}, syncOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter concurrent Body edits: %s\n", stats)
	conflicts := 0
	branch.ScanAll(func(n *domino.Note) bool {
		if n.IsConflict() {
			conflicts++
			fmt.Printf("conflict document preserves: %q\n", n.Text("Body"))
		}
		return true
	})
	fmt.Printf("conflict documents at branch: %d\n", conflicts)

	// --- concurrent edits on DIFFERENT items -> merged silently ---
	var other domino.UNID
	ada.All(func(n *domino.Note) bool {
		if n.Text("Form") == "Topic" && n.OID.UNID != contested {
			other = n.OID.UNID
			return false
		}
		return true
	})
	h2, _ := hq.Session("ada").Get(other)
	h2.SetText("Status", "hot thread") // HQ touches Status
	hq.Session("ada").Update(h2)
	b2, _ := branch.Session("bob").Get(other)
	b2.SetNumber("Votes", 42) // branch touches Votes
	branch.Session("bob").Update(b2)
	stats, err = domino.Replicate(branch, &domino.LocalPeer{DB: hq}, syncOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter disjoint edits: %s\n", stats)
	merged, _ := branch.Session("bob").Get(other)
	fmt.Printf("merged document: Status=%q Votes=%v (no conflict document)\n",
		merged.Text("Status"), merged.Number("Votes"))
}
