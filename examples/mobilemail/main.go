// Mobilemail: the disconnected-laptop scenario the paper's groupware story
// centers on. A user keeps a local replica of their server mail file, works
// offline (reads, writes, deletes), then reconnects and replicates — only
// the delta moves, and deletions propagate as stubs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	domino "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "domino-mobile")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	replica := domino.NewReplicaID()
	serverMail, err := domino.Open(filepath.Join(dir, "server-mail.nsf"),
		domino.Options{Title: "ada's mail (server)", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer serverMail.Close()
	laptop, err := domino.Open(filepath.Join(dir, "laptop-mail.nsf"),
		domino.Options{Title: "ada's mail (laptop)", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer laptop.Close()

	// Mail arrives at the server while the laptop is connected.
	deliver := func(db *domino.Database, subj string) *domino.Note {
		m := domino.NewDocument()
		m.SetText("Form", "Memo")
		m.SetText("From", "various senders")
		m.SetText("Subject", subj)
		m.SetText("Body", "message body for "+subj)
		if err := db.Session("router").Create(m); err != nil {
			log.Fatal(err)
		}
		return m
	}
	for i := 1; i <= 5; i++ {
		deliver(serverMail, fmt.Sprintf("inbox message %d", i))
	}

	opts := domino.ReplicationOptions{PeerName: "server"}
	stats, err := domino.Replicate(laptop, &domino.LocalPeer{DB: serverMail}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial sync: %s\n", stats)

	// --- go offline ---
	fmt.Println("\n-- laptop goes offline --")
	// New mail keeps arriving at the server.
	deliver(serverMail, "arrived while offline A")
	deliver(serverMail, "arrived while offline B")
	// Offline, ada deletes a message and drafts a reply.
	ada := laptop.Session("ada")
	var victim domino.UNID
	ada.All(func(n *domino.Note) bool {
		if n.Text("Subject") == "inbox message 3" {
			victim = n.OID.UNID
			return false
		}
		return true
	})
	if err := ada.Delete(victim); err != nil {
		log.Fatal(err)
	}
	draft := domino.NewDocument()
	draft.SetText("Form", "Memo")
	draft.SetText("Subject", "re: inbox message 1 (written offline)")
	draft.SetText("Body", "composed on a plane")
	if err := ada.Create(draft); err != nil {
		log.Fatal(err)
	}
	fmt.Println("offline: deleted 'inbox message 3', drafted one reply")

	// --- reconnect and sync: only the delta moves ---
	fmt.Println("\n-- laptop reconnects --")
	stats, err = domino.Replicate(laptop, &domino.LocalPeer{DB: serverMail}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta sync: %s\n", stats)
	fmt.Printf("notes moved: %d pulled, %d pushed (not the whole mail file)\n",
		stats.NotesFetched, stats.NotesSent)

	// The offline delete propagated to the server as a deletion stub.
	if _, err := serverMail.Session("ada").Get(victim); err != nil {
		fmt.Println("server: 'inbox message 3' is gone (stub replicated)")
	}
	count := 0
	serverMail.Session("ada").All(func(n *domino.Note) bool { count++; return true })
	fmt.Printf("server mail file now shows %d live messages\n", count)

	// Both replicas agree.
	subjects := func(db *domino.Database) map[string]bool {
		out := make(map[string]bool)
		db.Session("ada").All(func(n *domino.Note) bool {
			out[n.Text("Subject")] = true
			return true
		})
		return out
	}
	s1, s2 := subjects(serverMail), subjects(laptop)
	same := len(s1) == len(s2)
	for k := range s1 {
		if !s2[k] {
			same = false
		}
	}
	fmt.Printf("replicas converged: %v\n", same)
}
