// Helpdesk: a workflow application — the "structured workflow on Notes"
// pattern. Tickets carry Reader/Author items for per-document security, a
// save-triggered agent stamps and escalates tickets, and two servers route
// notification mail between offices.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	domino "repro"
)

func main() {
	base, err := os.MkdirTemp("", "domino-helpdesk")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// --- directory: users, groups, and two server identities ---
	d := domino.NewDirectory()
	users := []domino.User{
		{Name: "ada", Secret: "pw-ada", MailFile: "mail/ada.nsf"},
		{Name: "bob", Secret: "pw-bob", MailFile: "mail/bob.nsf", MailServer: "branch"},
		{Name: "eve", Secret: "pw-eve", MailFile: "mail/eve.nsf"},
		{Name: "hq", Secret: "srv-hq"},
		{Name: "branch", Secret: "srv-branch"},
	}
	for _, u := range users {
		if err := d.AddUser(u); err != nil {
			log.Fatal(err)
		}
	}
	d.AddGroup("supporters", "ada", "bob")

	// --- two servers ---
	hq, err := domino.NewServer(domino.ServerOptions{
		Name: "hq", DataDir: filepath.Join(base, "hq"),
		Directory: d, PeerSecret: "srv-hq",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hq.Close()
	branch, err := domino.NewServer(domino.ServerOptions{
		Name: "branch", DataDir: filepath.Join(base, "branch"),
		Directory: d, PeerSecret: "srv-branch",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer branch.Close()
	hqAddr, err := hq.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	branchAddr, err := branch.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	_ = hqAddr
	hq.SetPeers(map[string]string{"branch": branchAddr})

	// --- the helpdesk database on hq ---
	tickets, err := hq.OpenDB("apps/tickets.nsf", domino.Options{Title: "Helpdesk"})
	if err != nil {
		log.Fatal(err)
	}
	tickets.ACL().Set("supporters", domino.Editor)
	tickets.ACL().Set("ada", domino.Designer) // team lead maintains agents
	tickets.ACL().Set("eve", domino.Author)   // customers file tickets
	tickets.ACL().SetDefault(domino.NoAccess)
	if err := tickets.SaveACL(nil); err != nil {
		log.Fatal(err)
	}

	// A save-triggered agent: every new ticket is stamped Open and urgent
	// ones get escalated.
	mgr, err := domino.NewAgentManager(tickets)
	if err != nil {
		log.Fatal(err)
	}
	stamp, err := domino.NewAgent("triage", "ada", domino.AgentOnSave,
		`SELECT Form = "Ticket" & @IsUnavailable(Status)`,
		`FIELD Status := @If(Priority >= 8; "escalated"; "open")`)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Add(stamp); err != nil {
		log.Fatal(err)
	}

	// --- a customer files tickets; reader fields hide them from others ---
	file := func(user, subject string, priority float64) *domino.Note {
		tk := domino.NewDocument()
		tk.SetText("Form", "Ticket")
		tk.SetText("Subject", subject)
		tk.SetNumber("Priority", priority)
		// Only supporters and the reporter may see the ticket.
		tk.SetWithFlags("TicketReaders",
			domino.TextValue("supporters", user), domino.FlagReaders|domino.FlagSummary)
		if err := tickets.Session(user).Create(tk); err != nil {
			log.Fatal(err)
		}
		return tk
	}
	t1 := file("eve", "printer on fire", 9)
	t2 := file("eve", "password reset", 2)

	// The triage agent already ran on save.
	for _, tk := range []*domino.Note{t1, t2} {
		got, err := tickets.Session("ada").Get(tk.OID.UNID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ticket %-18q priority=%v status=%q\n",
			got.Text("Subject"), got.Number("Priority"), got.Text("Status"))
	}

	// Field-level encryption: internal triage notes on the ticket are
	// sealed for the support team only. Eve can read her own ticket but
	// not this field.
	adaSess := tickets.Session("ada")
	tk, _ := adaSess.Get(t1.OID.UNID)
	tk.SetText("InternalNotes", "customer also broke the fax machine")
	if err := adaSess.SealItem(tk, "InternalNotes", "ada", "bob"); err != nil {
		log.Fatal(err)
	}
	if err := adaSess.Update(tk); err != nil {
		log.Fatal(err)
	}
	if v, err := tickets.Session("bob").OpenItem(tk, "InternalNotes"); err == nil {
		fmt.Printf("bob unseals internal notes: %q\n", v.Text[0])
	}
	if _, err := tickets.Session("eve").OpenItem(tk, "InternalNotes"); err != nil {
		fmt.Println("eve cannot unseal the internal notes (not a recipient)")
	}

	// Reader fields at work: another customer cannot see eve's tickets...
	outsider := tickets.Session("mallory")
	if _, err := outsider.Get(t1.OID.UNID); err != nil {
		fmt.Println("mallory cannot read eve's ticket (reader items + ACL)")
	}
	// ...but supporters can.
	if _, err := tickets.Session("bob").Get(t1.OID.UNID); err == nil {
		fmt.Println("bob (supporters group) can read it")
	}

	// --- notify the team by mail, across servers ---
	client, err := domino.Dial(hqAddr, "eve", "pw-eve")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	memo := domino.NewDocument()
	memo.SetText("SendTo", "supporters")
	memo.SetText("From", "eve")
	memo.SetText("Subject", "new ticket: printer on fire")
	memo.SetText("Body", "please hurry")
	if err := client.MailDeposit(memo); err != nil {
		log.Fatal(err)
	}
	st, err := hq.Router().RouteOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hq router: delivered=%d forwarded=%d\n", st.Delivered, st.Forwarded)
	st, err = branch.Router().RouteOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branch router: delivered=%d (bob's mail lives on branch)\n", st.Delivered)

	adaMail, _ := hq.DB("mail/ada.nsf")
	bobMail, _ := branch.DB("mail/bob.nsf")
	fmt.Printf("ada inbox: %d message(s); bob inbox: %d message(s)\n",
		adaMail.Count(), bobMail.Count())
}
