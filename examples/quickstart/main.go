// Quickstart: create a database, store documents, define a view, search,
// and replicate to a second database.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	domino "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "domino-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- create a database and store documents ---
	replica := domino.NewReplicaID()
	db, err := domino.Open(filepath.Join(dir, "notes.nsf"),
		domino.Options{Title: "Quickstart", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sess := db.Session("Ada Lovelace")
	subjects := []string{"analytical engines", "programming notes", "replication demo"}
	for i, s := range subjects {
		doc := domino.NewDocument()
		doc.SetText("Form", "Memo")
		doc.SetText("Subject", s)
		doc.SetText("Body", "This memo is about "+s+".")
		doc.SetNumber("Priority", float64(i))
		if err := sess.Create(doc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("created %d documents in %q\n", db.Count(), db.Title())

	// --- define a sorted view and read it back ---
	def, err := domino.NewView("by subject", "SELECT Form = \"Memo\"",
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true},
		domino.ViewColumn{Title: "Priority", ItemName: "Priority"})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AddView(nil, def); err != nil {
		log.Fatal(err)
	}
	rows, err := sess.Rows("by subject")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("view 'by subject':")
	for _, r := range rows {
		fmt.Printf("  %-22s priority=%s\n", r.Entry.ColumnText(0), r.Entry.ColumnText(1))
	}

	// --- full-text search ---
	if err := db.EnableFullText(); err != nil {
		log.Fatal(err)
	}
	hits, err := sess.Search("replication")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-text 'replication': %d hit(s)\n", len(hits))

	// --- replicate into a second (empty) replica ---
	db2, err := domino.Open(filepath.Join(dir, "replica.nsf"),
		domino.Options{Title: "Quickstart Replica", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	stats, err := domino.Replicate(db2, &domino.LocalPeer{DB: db},
		domino.ReplicationOptions{PeerName: "notes.nsf"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated: %s\n", stats)
	fmt.Printf("replica now holds %d notes (including design notes)\n", db2.Count())

	// The view design replicated too: the replica can serve the same view.
	rows2, err := db2.Session("Ada Lovelace").Rows("by subject")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica view rows: %d\n", len(rows2))
}
