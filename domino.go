// Package domino is the public API of the Domino/Notes reproduction: a
// replicated, semi-structured document database with views, an @formula
// language, per-database ACLs with Reader/Author items, full-text search,
// mail routing, agents, and a client/server wire protocol.
//
// The package is a thin facade over the internal subsystems; see DESIGN.md
// for the architecture and EXPERIMENTS.md for the measured reproduction of
// the paper's architectural claims.
//
// Quick start:
//
//	db, err := domino.Open("discussion.nsf", domino.Options{Title: "Discussion"})
//	...
//	sess := db.Session("Ada Lovelace")
//	doc := domino.NewDocument()
//	doc.SetText("Form", "Topic")
//	doc.SetText("Subject", "hello groupware")
//	err = sess.Create(doc)
package domino

import (
	"io"
	"time"

	"repro/internal/acl"
	"repro/internal/agent"
	"repro/internal/backup"
	"repro/internal/changefeed"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/formula"
	"repro/internal/ft"
	"repro/internal/mesh"
	"repro/internal/nsf"
	"repro/internal/place"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/view"
	"repro/internal/wire"
)

// Core database types.
type (
	// Database is an open NSF database.
	Database = core.Database
	// Session is a user's ACL-checked handle on a database.
	Session = core.Session
	// Options configure Open.
	Options = core.Options
	// Note is a document: a bag of typed items with identity and version.
	Note = nsf.Note
	// Item is a named, typed value on a note.
	Item = nsf.Item
	// Value is a typed list value.
	Value = nsf.Value
	// UNID is a universal note ID, shared across replicas.
	UNID = nsf.UNID
	// ReplicaID identifies a replica set.
	ReplicaID = nsf.ReplicaID
	// Timestamp is a nanosecond wall/logical timestamp.
	Timestamp = nsf.Timestamp
	// Clock issues strictly monotonic timestamps.
	Clock = clock.Clock
	// StoreOptions tune the storage layer (WAL sync, group commit,
	// checkpointing); set on Options.Store.
	StoreOptions = store.Options
	// StoreStats reports storage statistics.
	StoreStats = store.Stats
	// DatabaseStats combines storage and change-propagation statistics
	// (returned by Database.Stats).
	DatabaseStats = core.Stats
	// ChangefeedStats reports a database's change-propagation position and
	// per-consumer lag.
	ChangefeedStats = changefeed.Stats
)

// Errors.
var (
	// ErrNotFound reports a missing note.
	ErrNotFound = core.ErrNotFound
	// ErrAccessDenied reports insufficient access rights.
	ErrAccessDenied = core.ErrAccessDenied
)

// Item flags.
const (
	FlagSummary = nsf.FlagSummary
	FlagReaders = nsf.FlagReaders
	FlagAuthors = nsf.FlagAuthors
	FlagNames   = nsf.FlagNames
)

// Note classes.
const (
	ClassDocument = nsf.ClassDocument
	ClassView     = nsf.ClassView
	ClassACL      = nsf.ClassACL
	ClassAgent    = nsf.ClassAgent
)

// Open opens or creates a database file.
func Open(path string, opts Options) (*Database, error) { return core.Open(path, opts) }

// NewDocument returns a fresh document note with a new UNID.
func NewDocument() *Note { return nsf.NewNote(nsf.ClassDocument) }

// NewReplicaID returns a fresh replica identity; pass the same value to two
// Opens to create a replica pair.
func NewReplicaID() ReplicaID { return nsf.NewReplicaID() }

// ParseUNID parses the 32-hex-digit form printed by UNID.String.
func ParseUNID(s string) (UNID, error) { return nsf.ParseUNID(s) }

// Value constructors.
var (
	// TextValue builds a text (list) value.
	TextValue = nsf.TextValue
	// NumberValue builds a number (list) value.
	NumberValue = nsf.NumberValue
	// TimeValue builds a time (list) value.
	TimeValue = nsf.TimeValue
)

// Views.
type (
	// ViewDefinition describes a view: selection formula plus columns.
	ViewDefinition = view.Definition
	// ViewColumn describes one view column.
	ViewColumn = view.Column
	// ViewIndex is a maintained view index.
	ViewIndex = view.Index
	// ViewRow is a rendered view row (category header or entry).
	ViewRow = view.Row
	// ViewEntry is one document's row in a view.
	ViewEntry = view.Entry
)

// NewView builds a view definition from a selection formula source and
// columns.
func NewView(name, selection string, cols ...ViewColumn) (*ViewDefinition, error) {
	return view.NewDefinition(name, selection, cols...)
}

// Formulas.
type (
	// Formula is a compiled @formula program.
	Formula = formula.Formula
	// FormulaContext supplies the evaluation environment.
	FormulaContext = formula.Context
)

// CompileFormula compiles @formula source.
func CompileFormula(src string) (*Formula, error) { return formula.Compile(src) }

// Access control.
type (
	// ACL is a database access control list.
	ACL = acl.ACL
	// ACLLevel is an access level (NoAccess … Manager).
	ACLLevel = acl.Level
	// Identity is a user's resolved access context.
	Identity = acl.Identity
	// Directory is the user/group registry (names.nsf).
	Directory = dir.Directory
	// User is a directory entry.
	User = dir.User
)

// Access levels.
const (
	NoAccess  = acl.NoAccess
	Depositor = acl.Depositor
	Reader    = acl.Reader
	Author    = acl.Author
	Editor    = acl.Editor
	Designer  = acl.Designer
	Manager   = acl.Manager
)

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return dir.New() }

// Replication.
type (
	// ReplicationOptions configure a replication session.
	ReplicationOptions = repl.Options
	// ReplicationStats report a session's outcome.
	ReplicationStats = repl.Stats
	// ApplyOptions tune conflict handling.
	ApplyOptions = repl.ApplyOptions
	// Peer is one side of a replication session.
	Peer = repl.Peer
	// LocalPeer adapts a local database to Peer.
	LocalPeer = repl.LocalPeer
	// ChangeTrigger converts a database's changefeed into a debounced
	// replicate-now signal for scheduled replication loops.
	ChangeTrigger = repl.ChangeTrigger
)

// NewChangeTrigger subscribes a replication trigger to db's changefeed.
func NewChangeTrigger(db *Database, debounce time.Duration) *ChangeTrigger {
	return repl.NewChangeTrigger(db, debounce)
}

// Replicate runs one replication session between a local database and a
// peer (local or remote).
func Replicate(local *Database, peer Peer, opts ReplicationOptions) (ReplicationStats, error) {
	return repl.Replicate(local, peer, opts)
}

// Full-text search.
type (
	// SearchResult is one full-text hit.
	SearchResult = ft.Result
)

// Server and wire protocol.
type (
	// Server is a Domino-style server over a data directory.
	Server = server.Server
	// ServerOptions configure a server.
	ServerOptions = server.Options
	// ServerHealth is a server's availability snapshot (state, index,
	// in-flight/queued counts, latency EWMA, shed and panic counters).
	ServerHealth = server.Health
	// Client is an authenticated wire connection.
	Client = wire.Client
	// ClientOptions tune client timeouts, retries, and backoff.
	ClientOptions = wire.Options
	// RemoteDB is a database opened over the wire; it implements Peer.
	RemoteDB = wire.RemoteDB
	// FailoverClient is a cluster-aware client: it holds a list of cluster
	// mates, probes their availability, and transparently fails over —
	// rebinding open handles — when the current mate dies or sheds work.
	FailoverClient = wire.FailoverClient
	// FailoverOptions tune mate selection, circuit breaking, and probing.
	FailoverOptions = wire.FailoverOptions
	// FailoverStats count failovers, busy redirects, and probes.
	FailoverStats = wire.FailoverStats
	// FailoverDB is a database handle that survives mate failover; it
	// implements Peer.
	FailoverDB = wire.FailoverDB
	// AvailabilityInfo is a server's self-reported availability snapshot.
	AvailabilityInfo = wire.AvailabilityInfo
	// BusyError is a shed response: the server refused the request before
	// executing it, carrying its state and availability index.
	BusyError = wire.BusyError
	// DeadlineError is a deadline-budget expiry: Ambiguous distinguishes
	// "provably never executed" (safe to re-send) from "may have executed"
	// (re-send only idempotent ops); Remote tells whether the server or the
	// client made the call.
	DeadlineError = wire.DeadlineError
	// RemoteViewRow is one rendered remote view row; IsCategory marks
	// synthesized category headers explicitly. (ViewRow is the local
	// rendering's row type.)
	RemoteViewRow = wire.ViewRow
	// ViewPage is one paginated page of a rendered remote view.
	ViewPage = wire.ViewPage
	// ScanOptions parameterize a bulk scan: selection formula, projected
	// columns, and page size.
	ScanOptions = wire.ScanOptions
	// ScanRow is one projected document from a bulk scan, with typed
	// item values.
	ScanRow = wire.ScanRow
	// ScanPage is one page of a bulk scan with its opaque resume cursor.
	ScanPage = wire.ScanPage
	// SearchHit is one paginated full-text hit with optional pre-joined
	// summary column values.
	SearchHit = wire.SearchHit
	// SearchPage is one page of ranked full-text hits.
	SearchPage = wire.SearchPage
	// Router moves mail from mail.box to destinations.
	Router = router.Router
)

// ErrServerBusy matches any BusyError via errors.Is: the request was shed
// by admission control and provably never executed, so it is always safe
// to re-send.
var ErrServerBusy = wire.ErrServerBusy

// ErrDeadline matches any DeadlineError via errors.Is: the operation's
// deadline budget ran out. Check the DeadlineError's Ambiguous field
// before re-sending a non-idempotent operation.
var ErrDeadline = wire.ErrDeadline

// NewServer creates a server over a data directory.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Dial connects and authenticates to a server with default client options.
func Dial(addr, user, secret string) (*Client, error) { return wire.Dial(addr, user, secret) }

// DialOptions is Dial with explicit timeout/retry/backoff options.
func DialOptions(addr, user, secret string, opts ClientOptions) (*Client, error) {
	return wire.DialOptions(addr, user, secret, opts)
}

// DialFailover connects to the first reachable cluster mate in addrs; the
// returned client fails over to other mates on transport errors and busy
// sheds, rebinding open database handles.
func DialFailover(addrs []string, user, secret string, opts FailoverOptions) (*FailoverClient, error) {
	return wire.DialFailover(addrs, user, secret, opts)
}

// ProbeAvailability asks a server for its availability snapshot without
// authenticating (the probe is answered even in RESTRICTED drain mode). A
// nil dialer uses net.Dial.
func ProbeAvailability(addr string, timeout time.Duration) (AvailabilityInfo, error) {
	return wire.ProbeAvailability(addr, nil, timeout)
}

// RetryableError reports whether err is a transient transport failure that
// a retry on a fresh connection may cure (server-reported errors are not).
func RetryableError(err error) bool { return wire.Retryable(err) }

// Replication mesh.
type (
	// Mesh schedules a server's replication links (see Server.EnableMesh).
	Mesh = mesh.Mesh
	// MeshOptions tune the mesh scheduler's defaults and breaker.
	MeshOptions = mesh.Options
	// MeshLink is one replication edge: peer, database glob, selection
	// formula, direction, and schedule class.
	MeshLink = mesh.Link
	// MeshLinkStatus is a link's live scheduling and transfer state.
	MeshLinkStatus = mesh.LinkStatus
	// TopoLink is one line of a mesh topology file: a link plus the server
	// that runs it.
	TopoLink = mesh.TopoLink
	// Fingerprint digests a replica's (UNID, Seq, SeqTime) set for the
	// convergence audit.
	Fingerprint = mesh.Fingerprint
)

// ParseTopology reads a shared mesh topology description (one link per
// line); each server takes its own links with MeshLinksFor.
func ParseTopology(r io.Reader) ([]TopoLink, error) { return mesh.ParseTopology(r) }

// MeshLinksFor filters a topology down to the links one server runs.
func MeshLinksFor(topo []TopoLink, server string) []MeshLink { return mesh.LinksFor(topo, server) }

// FingerprintDB digests a database's document (UNID, Seq, SeqTime) set;
// converged replicas — full or selective — have equal fingerprints.
func FingerprintDB(db *Database) (Fingerprint, error) { return mesh.FingerprintDB(db) }

// Placement and rebalancing.
type (
	// Placement is a directory placement record: which cluster mates home
	// a database, stamped with a compare-and-swap generation.
	Placement = dir.Placement
	// ResolveInfo is a placement record resolved over the wire.
	ResolveInfo = wire.ResolveInfo
	// HomeAddr names one home mate and its address.
	HomeAddr = wire.HomeAddr
	// WrongMateError is a placement redirect: the mate does not home the
	// database and answers with the authoritative home set instead of
	// executing the request.
	WrongMateError = wire.WrongMateError
	// MoveOptions tune a live database move.
	MoveOptions = place.MoveOptions
	// MoveResult describes a committed move or re-home.
	MoveResult = place.MoveResult
	// RecoverOptions tune re-homing a database off a dead mate.
	RecoverOptions = place.RecoverOptions
)

var (
	// ErrWrongMate matches any WrongMateError via errors.Is.
	ErrWrongMate = wire.ErrWrongMate
	// ErrPlacementConflict reports a lost placement compare-and-swap:
	// another writer committed the generation first.
	ErrPlacementConflict = dir.ErrPlacementConflict
)

// MoveDatabase relocates one database from src to dst while both keep
// serving, then flips the directory placement record so clients re-route.
// Exactly one concurrent move of a database wins per generation.
func MoveDatabase(d *Directory, src, dst *Server, path string, opts MoveOptions) (MoveResult, error) {
	return place.Move(d, src, dst, path, opts)
}

// RecoverDatabase re-homes one database off a dead mate onto dst from its
// last backup image, optionally catching up from the dead data directory.
func RecoverDatabase(d *Directory, deadName string, dst *Server, path string, opts RecoverOptions) (MoveResult, error) {
	return place.Recover(d, deadName, dst, path, opts)
}

// ResolvePlacement asks a server for one database's placement without
// authenticating (answered even in RESTRICTED drain mode).
func ResolvePlacement(addr, path string, timeout time.Duration) (ResolveInfo, error) {
	return wire.ResolvePlacement(addr, path, nil, timeout)
}

// ListPlacements lists every placement record a server's directory holds.
func ListPlacements(addr string, timeout time.Duration) ([]ResolveInfo, error) {
	return wire.ListPlacements(addr, nil, timeout)
}

// Backup and media recovery.
type (
	// BackupImage describes one image in a backup set.
	BackupImage = backup.ImageInfo
	// BackupSet is a loaded backup set (a directory of chained images).
	BackupSet = backup.Set
	// RestoreOptions select the point-in-time recovery target.
	RestoreOptions = backup.RestoreOptions
	// RestoreInfo reports what a restore did.
	RestoreInfo = backup.RestoreInfo
	// BackupVerifyResult reports an offline backup-set integrity pass.
	BackupVerifyResult = backup.VerifyResult
)

// Backup image kinds.
const (
	BackupKindFull        = backup.KindFull
	BackupKindIncremental = backup.KindIncremental
)

// RestoreDatabase rebuilds a database at targetPath from the backup set at
// setDir — optionally rolling forward over archived WAL segments to a
// target USN — and opens it.
func RestoreDatabase(setDir, targetPath string, ropts RestoreOptions, opts Options) (*Database, RestoreInfo, error) {
	return core.Restore(setDir, targetPath, ropts, opts)
}

// VerifyBackupSet runs an offline integrity pass over a backup set (and,
// when archiveDir is non-empty, its log archive).
func VerifyBackupSet(setDir, archiveDir string) (*BackupVerifyResult, error) {
	return backup.VerifySet(setDir, archiveDir)
}

// OpenBackupSet loads the backup set in a directory (images sorted in
// chain order) without verifying bodies.
func OpenBackupSet(setDir string) (*BackupSet, error) { return backup.OpenSet(setDir) }

// Agents.
type (
	// Agent is a compiled agent.
	Agent = agent.Agent
	// AgentManager runs a database's agents.
	AgentManager = agent.Manager
)

// Agent triggers.
const (
	AgentOnInvoke = agent.OnInvoke
	AgentOnSave   = agent.OnSave
)

// NewAgent compiles an agent from formula sources.
func NewAgent(name, signer string, trigger agent.Trigger, selection, action string) (*Agent, error) {
	return agent.New(name, signer, trigger, selection, action)
}

// NewAgentManager loads and manages a database's agents.
func NewAgentManager(db *Database) (*AgentManager, error) { return agent.NewManager(db) }
