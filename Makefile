# Repro of "A Database Perspective on Lotus Domino/Notes" (SIGMOD 1999).
# Stdlib-only Go; no external tools required beyond the go toolchain.

GO ?= go

.PHONY: all build vet test race stress verify bench experiments bench-backup bench-readpath bench-availability clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short -race stress pass over the concurrency regression tests: the
# versioned-write races (lost Seq updates, RawPut orphaning, replication
# history forks), the snapshot-scan/reader-writer latching tests, and the
# server shutdown races (Close vs in-flight dispatch vs cluster pushers,
# failover clients losing a mate mid-session).
stress:
	$(GO) test -race -count=2 \
		-run 'TestConcurrentUpdatesSeqMonotonic|TestRawPutDeleteNoOrphan|TestSaveHistoryConcurrentSeq|TestConcurrentReadersWriters|TestSnapshotScanSeesConsistentPrefix|TestScanDoesNotBlockWriter|TestCloseRacesInflightAndClusterPush|TestFailoverKillMidNotesSession|TestFailoverKillMidReplicationSession' \
		./internal/core ./internal/repl ./internal/store ./internal/server

# verify is the tier-1 gate: build, vet, full tests, the race detector, and
# the concurrency stress pass.
verify: build vet test race stress

# Write-path benchmark suite (changefeed: latency vs open consumers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkW1 -benchtime 500x .

# Regenerate the write-path latency baseline (BENCH_writepath.json).
experiments:
	$(GO) run ./cmd/experiments -exp W1
	$(GO) run ./cmd/experiments -exp W2

# Regenerate the backup/restore baseline (BENCH_backup.json): incremental
# vs full image cost, hot-backup put-latency interference, restore/PITR.
bench-backup:
	$(GO) run ./cmd/experiments -exp W3

# Regenerate the read-path baseline (BENCH_readpath.json): point-read
# throughput under a sustained writer and Put latency under back-to-back
# scans, RW-latch + note cache vs the serialized (seed) discipline.
bench-readpath:
	$(GO) run ./cmd/experiments -exp W4

# Regenerate the availability baseline (BENCH_availability.json): failover
# window and zero-lost-acked-writes on node kill, accepted-request latency
# under 2x overload with admission control on vs off.
bench-availability:
	$(GO) run ./cmd/experiments -exp W5

clean:
	$(GO) clean ./...
