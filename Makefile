# Repro of "A Database Perspective on Lotus Domino/Notes" (SIGMOD 1999).
# Stdlib-only Go; no external tools required beyond the go toolchain.

GO ?= go

.PHONY: all build vet test race verify bench experiments bench-backup clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: build, vet, full tests, and the race detector.
verify: build vet test race

# Write-path benchmark suite (changefeed: latency vs open consumers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkW1 -benchtime 500x .

# Regenerate the write-path latency baseline (BENCH_writepath.json).
experiments:
	$(GO) run ./cmd/experiments -exp W1
	$(GO) run ./cmd/experiments -exp W2

# Regenerate the backup/restore baseline (BENCH_backup.json): incremental
# vs full image cost, hot-backup put-latency interference, restore/PITR.
bench-backup:
	$(GO) run ./cmd/experiments -exp W3

clean:
	$(GO) clean ./...
