# Repro of "A Database Perspective on Lotus Domino/Notes" (SIGMOD 1999).
# Stdlib-only Go; no external tools required beyond the go toolchain.

GO ?= go

.PHONY: all build vet test race stress fuzz verify bench experiments bench-backup bench-readpath bench-availability bench-writepath bench-placement bench-mesh bench-bulkread bench-deadline drift clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short -race stress pass over the concurrency regression tests: the
# versioned-write races (lost Seq updates, RawPut orphaning, replication
# history forks), the snapshot-scan/reader-writer latching tests, the
# group-commit races (64 committers vs checkpoint/compact/hot-backup and
# crash-durability of acked batches), and the server shutdown races (Close
# vs in-flight dispatch vs cluster pushers, failover clients losing a mate
# mid-session).
stress:
	$(GO) test -race -count=2 \
		-run 'TestConcurrentUpdatesSeqMonotonic|TestRawPutDeleteNoOrphan|TestSaveHistoryConcurrentSeq|TestConcurrentReadersWriters|TestSnapshotScanSeesConsistentPrefix|TestScanDoesNotBlockWriter|TestGroupCommitRacesMaintenance|TestGroupCommitCrashKeepsAckedPuts|TestGroupCommitAmortization|TestCloseRacesInflightAndClusterPush|TestFailoverKillMidNotesSession|TestFailoverKillMidReplicationSession|TestConcurrentMovesExactlyOneWinner|TestUpdatePlacementExactlyOneWinnerPerGeneration|TestLiveMoveZeroLostAckedWrites' \
		./internal/core ./internal/repl ./internal/store ./internal/server ./internal/place ./internal/dir

# Short native-fuzz smoke over the three parsers that guard trust boundaries:
# the note codec (every WAL record and wire note passes through it), the
# frame reader (the first parse on every connection), and the formula
# compiler (mesh link selection formulas arrive over the admin wire ops and
# from topology files). Each target also keeps its corpus as seed tests
# under plain `go test`.
fuzz:
	$(GO) test ./internal/nsf -run '^$$' -fuzz FuzzDecodeNote -fuzztime 15s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReadFrame -fuzztime 15s
	$(GO) test ./internal/formula -run '^$$' -fuzz FuzzCompile -fuzztime 15s

# verify is the tier-1 gate: build, vet, full tests, the race detector, and
# the concurrency stress pass.
verify: build vet test race stress

# Write-path benchmark suite (changefeed: latency vs open consumers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkW1 -benchtime 500x .

# Regenerate the write-path latency baseline (BENCH_writepath.json).
experiments:
	$(GO) run ./cmd/experiments -exp W1
	$(GO) run ./cmd/experiments -exp W2

# Regenerate the backup/restore baseline (BENCH_backup.json): incremental
# vs full image cost, hot-backup put-latency interference, restore/PITR.
bench-backup:
	$(GO) run ./cmd/experiments -exp W3

# Regenerate the read-path baseline (BENCH_readpath.json): point-read
# throughput under a sustained writer and Put latency under back-to-back
# scans, RW-latch + note cache vs the serialized (seed) discipline.
bench-readpath:
	$(GO) run ./cmd/experiments -exp W4

# Regenerate the availability baseline (BENCH_availability.json): failover
# window and zero-lost-acked-writes on node kill, accepted-request latency
# under 2x overload with admission control on vs off.
bench-availability:
	$(GO) run ./cmd/experiments -exp W5

# Regenerate the write-path baseline (BENCH_writepath.json): W1 plus the W7
# group-commit scaling matrix (1..64 writers x SyncWAL x group commit).
bench-writepath:
	$(GO) run ./cmd/experiments -exp W1
	$(GO) run ./cmd/experiments -exp W7

# Regenerate the placement baseline (BENCH_placement.json): live-move
# latency under a streaming writer and dead-mate re-home times, both with
# the zero-lost-acked-writes audit.
bench-placement:
	$(GO) run ./cmd/experiments -exp W6

# Regenerate the bulk-read section of BENCH_readpath.json: W9 paginated
# view-open latency over a 5ms-RTT faultnet link vs the per-note baseline,
# and the frame-bound 200k-row stream with every response frame audited
# against wire.MaxFrame.
bench-bulkread:
	$(GO) run ./cmd/experiments -exp W9

# Regenerate the mesh baseline (BENCH_mesh.json): W8 epidemic-mesh
# time-to-convergence and per-link traffic for ring and hub-spoke under
# faultnet churn (drops, severs, a partitioned node, a killed mate), plus
# the selective-replication selection-stub audit.
bench-mesh:
	$(GO) run ./cmd/experiments -exp W8

# Regenerate the deadline baseline (BENCH_deadline.json): W10 stalled-mate
# read tail (flat-timeout failover vs budget+hedge), wasted work under
# overload with and without wire budgets, and the write-safety audit across
# deadline-expiry retries (zero acked writes lost or duplicated).
bench-deadline:
	$(GO) run ./cmd/experiments -exp W10

# Bench drift guard: re-measure W1/W7 (write path), the W6 re-home median,
# the W8 mesh ring time-to-convergence, the W9 paginated view-open probe,
# and the W10 hedged stalled-mate p99 at quick sizes; fail on regression
# beyond each probe's tolerance against the committed BENCH_writepath.json /
# BENCH_placement.json / BENCH_mesh.json / BENCH_readpath.json /
# BENCH_deadline.json.
drift:
	$(GO) run ./cmd/experiments -exp GUARD -quick

clean:
	$(GO) clean ./...
