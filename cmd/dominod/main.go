// Command dominod runs a Domino-style server: it serves a data directory of
// NSF databases over the wire protocol and runs the router and replicator
// background tasks described by its configuration file.
//
// Usage:
//
//	dominod -config server.conf
//
// Configuration file format (one directive per line, '#' comments):
//
//	name   hub                              # server name (must be a user)
//	data   /var/domino/data                 # data directory
//	listen 0.0.0.0:1352                     # bind address
//	secret srv-secret                       # this server's peer secret
//	user   ada pw-ada mail/ada.nsf          # name secret [mailfile [server]]
//	user   bob pw-bob mail/bob.nsf spoke
//	group  supporters ada,bob
//	db     apps/tickets.nsf Helpdesk        # pre-open path [title]
//	ftindex apps/tickets.nsf                # full-text index this db at boot
//	peer   spoke 10.0.0.2:1352              # peer name and address
//	replicate spoke apps/tickets.nsf 30s    # periodic replication job
//	route  10s                              # router interval
//	cluster spoke                           # event-driven push to this peer
//	catalog 5m                              # catalog refresh interval
//	monitor 100                             # log an event every N changes per db
//	agent  apps/tickets.nsf escalate 1m     # run a stored agent on a schedule
//	fault  seed=7,sever=0.01,delay=0.1,maxdelay=5ms   # inject network faults
//	syncwal                                 # fsync the WAL on every operation
//	archivelog /var/domino/walog            # archive sealed WAL segments here
//	backup /var/domino/backup 6h 4          # scheduled backups: root, interval,
//	                                        # and (optionally) a full image every
//	                                        # Nth run (incrementals between;
//	                                        # 0 = always full)
//	maxinflight 256                         # admission control: in-flight cap
//	admitwait 100ms                         # max queue wait before shedding busy
//	drain 15s                               # graceful-drain timeout on shutdown
//	advertise 10.0.0.1:1352                 # address redirects report for this
//	                                        # mate (when listen is a wildcard)
//	placement apps/tickets.nsf hub,spoke 2  # pin a database's home mates
//	                                        # [replica factor]
//	placement auto 2                        # rendezvous-assign every unpinned
//	                                        # pre-opened db across the cluster
//	meshlink east spoke *.nsf hot 30s both  # epidemic mesh link: name, peer,
//	                                        # glob, hot|cold, interval,
//	                                        # pull|push|both, then optionally
//	                                        # a selection formula verbatim
//	topology /var/domino/mesh.topo          # shared topology file; this server
//	                                        # takes the links it is the source of
//
// Mesh links (meshlink directives plus this server's lines of the topology
// file) start the mesh scheduler: hot links replicate off the changefeed
// (debounced), cold links run jittered anti-entropy rounds, and links to
// unreachable peers back off behind a circuit breaker. Links can also be
// added and removed at runtime with nsfadmin mesh.
//
// The fault directive (or the -fault flag, which overrides it) wraps the
// listener in a seeded fault injector — connections randomly dropped,
// delayed, truncated, or severed — for soak-testing replication and
// client retry behavior against an unreliable network.
//
// Cluster mates can also be named on the command line with repeatable
// -cluster name=addr flags (added to any config "cluster" directives; the
// address registers the peer too, so no separate "peer" line is needed).
//
// Runtime quiesce/resume directives are delivered as signals: SIGUSR1
// puts the server in RESTRICTED drain mode (new sessions refused, probes
// answer RESTRICTED, in-flight work finishes, cluster pushers flush) and
// SIGUSR2 resumes service. SIGTERM/SIGINT gracefully drain (bounded by
// the drain timeout) before closing, so a planned restart shifts clients
// to their failover mates instead of stranding them mid-request.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	domino "repro"
	"repro/internal/faultnet"
	"repro/internal/mesh"
	"repro/internal/repl"
)

type replicaJob struct {
	peer     string
	dbPath   string
	interval time.Duration
}

type config struct {
	name        string
	data        string
	listen      string
	secret      string
	directory   *domino.Directory
	peers       map[string]string
	preopen     [][2]string // path, title
	ftindex     []string    // databases to full-text index at boot
	jobs        []replicaJob
	routeTick   time.Duration
	clusterWith []string
	catalogTick time.Duration
	monitorN    int
	agents      []agentJob
	faultSpec   string
	syncWAL     bool
	archiveLog  string
	backupDir   string
	backupTick  time.Duration
	backupFullN int // a full image every Nth backup run (0 = every run)
	maxInFlight int
	admitWait   time.Duration
	peerBudget  time.Duration // deadline budget for ops to peers (0 = none)
	drain       time.Duration // graceful-drain timeout on shutdown
	advertise   string
	placements  []placementDecl
	autoPlace   int // rendezvous-assign unpinned dbs at this replica factor
	meshLinks   []mesh.Link
	topoPath    string // shared topology file; resolved against cfg.name
}

type placementDecl struct {
	path     string
	home     []string
	replicas int
}

type agentJob struct {
	dbPath   string
	name     string
	interval time.Duration
}

func parseConfig(path string) (*config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg := &config{
		directory: domino.NewDirectory(),
		peers:     make(map[string]string),
		listen:    "127.0.0.1:1352",
		routeTick: 15 * time.Second,
	}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("%s:%d: %s: %q", path, lineNo, why, line)
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, bad("name wants 1 argument")
			}
			cfg.name = fields[1]
		case "data":
			if len(fields) != 2 {
				return nil, bad("data wants 1 argument")
			}
			cfg.data = fields[1]
		case "listen":
			if len(fields) != 2 {
				return nil, bad("listen wants 1 argument")
			}
			cfg.listen = fields[1]
		case "secret":
			if len(fields) != 2 {
				return nil, bad("secret wants 1 argument")
			}
			cfg.secret = fields[1]
		case "user":
			if len(fields) < 3 || len(fields) > 5 {
				return nil, bad("user wants 2-4 arguments")
			}
			u := domino.User{Name: fields[1], Secret: fields[2]}
			if len(fields) > 3 {
				u.MailFile = fields[3]
			}
			if len(fields) > 4 {
				u.MailServer = fields[4]
			}
			if err := cfg.directory.AddUser(u); err != nil {
				return nil, bad(err.Error())
			}
		case "group":
			if len(fields) != 3 {
				return nil, bad("group wants 2 arguments")
			}
			if err := cfg.directory.AddGroup(fields[1], strings.Split(fields[2], ",")...); err != nil {
				return nil, bad(err.Error())
			}
		case "db":
			if len(fields) < 2 {
				return nil, bad("db wants at least 1 argument")
			}
			title := fields[1]
			if len(fields) > 2 {
				title = strings.Join(fields[2:], " ")
			}
			cfg.preopen = append(cfg.preopen, [2]string{fields[1], title})
		case "ftindex":
			if len(fields) != 2 {
				return nil, bad("ftindex wants 1 argument")
			}
			cfg.ftindex = append(cfg.ftindex, fields[1])
		case "peer":
			if len(fields) != 3 {
				return nil, bad("peer wants 2 arguments")
			}
			cfg.peers[strings.ToLower(fields[1])] = fields[2]
		case "replicate":
			if len(fields) != 4 {
				return nil, bad("replicate wants 3 arguments")
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.jobs = append(cfg.jobs, replicaJob{peer: fields[1], dbPath: fields[2], interval: d})
		case "route":
			if len(fields) != 2 {
				return nil, bad("route wants 1 argument")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.routeTick = d
		case "cluster":
			if len(fields) != 2 {
				return nil, bad("cluster wants 1 argument")
			}
			cfg.clusterWith = append(cfg.clusterWith, fields[1])
		case "catalog":
			if len(fields) != 2 {
				return nil, bad("catalog wants 1 argument")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.catalogTick = d
		case "monitor":
			if len(fields) != 2 {
				return nil, bad("monitor wants 1 argument")
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &cfg.monitorN); err != nil || cfg.monitorN <= 0 {
				return nil, bad("monitor wants a positive change threshold")
			}
		case "fault":
			if len(fields) != 2 {
				return nil, bad("fault wants 1 argument")
			}
			if _, err := faultnet.ParsePlan(fields[1]); err != nil {
				return nil, bad(err.Error())
			}
			cfg.faultSpec = fields[1]
		case "syncwal":
			if len(fields) != 1 {
				return nil, bad("syncwal wants no arguments")
			}
			cfg.syncWAL = true
		case "archivelog":
			if len(fields) != 2 {
				return nil, bad("archivelog wants 1 argument")
			}
			cfg.archiveLog = fields[1]
		case "backup":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, bad("backup wants 2-3 arguments")
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.backupDir = fields[1]
			cfg.backupTick = d
			if len(fields) == 4 {
				if _, err := fmt.Sscanf(fields[3], "%d", &cfg.backupFullN); err != nil || cfg.backupFullN < 0 {
					return nil, bad("backup wants a non-negative full-image cadence")
				}
			}
		case "maxinflight":
			if len(fields) != 2 {
				return nil, bad("maxinflight wants 1 argument")
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &cfg.maxInFlight); err != nil || cfg.maxInFlight == 0 {
				return nil, bad("maxinflight wants a non-zero request cap (negative disables admission)")
			}
		case "admitwait":
			if len(fields) != 2 {
				return nil, bad("admitwait wants 1 argument")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.admitWait = d
		case "peerbudget":
			if len(fields) != 2 {
				return nil, bad("peerbudget wants 1 argument")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.peerBudget = d
		case "drain":
			if len(fields) != 2 {
				return nil, bad("drain wants 1 argument")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.drain = d
		case "advertise":
			if len(fields) != 2 {
				return nil, bad("advertise wants 1 argument")
			}
			cfg.advertise = fields[1]
		case "placement":
			if len(fields) >= 2 && fields[1] == "auto" {
				if len(fields) != 3 {
					return nil, bad("placement auto wants a replica factor")
				}
				if _, err := fmt.Sscanf(fields[2], "%d", &cfg.autoPlace); err != nil || cfg.autoPlace <= 0 {
					return nil, bad("placement auto wants a positive replica factor")
				}
				break
			}
			if len(fields) < 3 || len(fields) > 4 {
				return nil, bad("placement wants path, home mates, and optionally a replica factor")
			}
			decl := placementDecl{path: fields[1], home: strings.Split(fields[2], ",")}
			if len(fields) == 4 {
				if _, err := fmt.Sscanf(fields[3], "%d", &decl.replicas); err != nil || decl.replicas <= 0 {
					return nil, bad("placement wants a positive replica factor")
				}
			}
			cfg.placements = append(cfg.placements, decl)
		case "meshlink":
			// meshlink NAME PEER GLOB hot|cold INTERVAL pull|push|both [FORMULA...]
			if len(fields) < 7 {
				return nil, bad("meshlink wants name, peer, glob, class, interval, direction, and optionally a formula")
			}
			class, err := mesh.ParseClass(fields[4])
			if err != nil {
				return nil, bad(err.Error())
			}
			d, err := time.ParseDuration(fields[5])
			if err != nil {
				return nil, bad(err.Error())
			}
			dirn, err := mesh.ParseDirection(fields[6])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.meshLinks = append(cfg.meshLinks, mesh.Link{
				Name:      fields[1],
				Peer:      fields[2],
				Glob:      fields[3],
				Formula:   strings.Join(fields[7:], " "),
				Direction: dirn,
				Class:     class,
				Interval:  d,
			})
		case "topology":
			if len(fields) != 2 {
				return nil, bad("topology wants 1 argument")
			}
			cfg.topoPath = fields[1]
		case "agent":
			if len(fields) != 4 {
				return nil, bad("agent wants 3 arguments")
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			cfg.agents = append(cfg.agents, agentJob{dbPath: fields[1], name: fields[2], interval: d})
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cfg.name == "" || cfg.data == "" {
		return nil, fmt.Errorf("%s: 'name' and 'data' are required", path)
	}
	return cfg, nil
}

// clusterFlag collects repeatable -cluster name=addr mate declarations.
type clusterFlag []string

func (c *clusterFlag) String() string { return strings.Join(*c, ",") }
func (c *clusterFlag) Set(v string) error {
	if _, _, ok := strings.Cut(v, "="); !ok {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func main() {
	configPath := flag.String("config", "server.conf", "configuration file")
	faultSpec := flag.String("fault", "",
		"network fault plan, e.g. seed=7,sever=0.01,delay=0.1,maxdelay=5ms (overrides config)")
	syncWAL := flag.Bool("syncwal", false, "fsync the WAL on every operation (overrides config)")
	groupCommit := flag.Duration("groupcommit", 0,
		"group-commit window (e.g. 200us): concurrent writers share one WAL force; 0 disables")
	var clusterMates clusterFlag
	flag.Var(&clusterMates, "cluster",
		"cluster mate as name=addr (repeatable; adds to config cluster/peer directives)")
	flag.Parse()
	cfg, err := parseConfig(*configPath)
	if err != nil {
		log.Fatalf("dominod: %v", err)
	}
	if *syncWAL {
		cfg.syncWAL = true
	}
	for _, m := range clusterMates {
		name, addr, _ := strings.Cut(m, "=")
		cfg.peers[strings.ToLower(name)] = addr
		cfg.clusterWith = append(cfg.clusterWith, name)
	}
	srv, err := domino.NewServer(domino.ServerOptions{
		Name:              cfg.name,
		DataDir:           cfg.data,
		Directory:         cfg.directory,
		Peers:             cfg.peers,
		PeerSecret:        cfg.secret,
		SyncWAL:           cfg.syncWAL,
		GroupCommitWindow: *groupCommit,
		ArchiveLogDir:     cfg.archiveLog,
		MaxInFlight:       cfg.maxInFlight,
		AdmitWait:         cfg.admitWait,
		PeerOpBudget:      cfg.peerBudget,
		AdvertiseAddr:     cfg.advertise,
	})
	if err != nil {
		log.Fatalf("dominod: %v", err)
	}
	for _, pre := range cfg.preopen {
		if _, err := srv.OpenDB(pre[0], domino.Options{Title: pre[1]}); err != nil {
			log.Fatalf("dominod: open %s: %v", pre[0], err)
		}
		log.Printf("opened database %s", pre[0])
	}
	for _, path := range cfg.ftindex {
		db, err := srv.OpenDB(path, domino.Options{})
		if err != nil {
			log.Fatalf("dominod: ftindex %s: %v", path, err)
		}
		if err := db.EnableFullText(); err != nil {
			log.Fatalf("dominod: ftindex %s: %v", path, err)
		}
		log.Printf("full-text index enabled on %s", path)
	}
	spec := cfg.faultSpec
	if *faultSpec != "" {
		spec = *faultSpec
	}
	var addr string
	if spec != "" {
		plan, err := faultnet.ParsePlan(spec)
		if err != nil {
			log.Fatalf("dominod: fault plan: %v", err)
		}
		ln, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			log.Fatalf("dominod: listen: %v", err)
		}
		addr = srv.Serve(faultnet.New(plan).Listener(ln))
		log.Printf("FAULT INJECTION ACTIVE: %s", spec)
	} else {
		addr, err = srv.Start(cfg.listen)
		if err != nil {
			log.Fatalf("dominod: listen: %v", err)
		}
	}
	log.Printf("server %q serving %s on %s", cfg.name, cfg.data, addr)
	if len(cfg.clusterWith) > 0 {
		mates := make(map[string]string, len(cfg.clusterWith))
		for _, name := range cfg.clusterWith {
			peerAddr, ok := cfg.peers[strings.ToLower(name)]
			if !ok {
				log.Fatalf("dominod: cluster mate %q has no peer address", name)
			}
			mates[name] = peerAddr
		}
		srv.EnableClustering(mates)
		log.Printf("cluster push enabled to %v", cfg.clusterWith)
	}
	if cfg.monitorN > 0 {
		srv.EnableMonitor(cfg.monitorN)
		log.Printf("event monitor enabled (threshold %d changes)", cfg.monitorN)
	}
	// Replication mesh: links from meshlink directives plus this server's
	// lines of the shared topology file. A bad link (unknown peer is fine —
	// the breaker handles that — but a bad formula or glob is not) is a
	// startup error.
	meshLinks := append([]mesh.Link(nil), cfg.meshLinks...)
	if cfg.topoPath != "" {
		tf, err := os.Open(cfg.topoPath)
		if err != nil {
			log.Fatalf("dominod: topology: %v", err)
		}
		topo, err := mesh.ParseTopology(tf)
		tf.Close()
		if err != nil {
			log.Fatalf("dominod: topology: %v", err)
		}
		meshLinks = append(meshLinks, mesh.LinksFor(topo, cfg.name)...)
	}
	if len(meshLinks) > 0 {
		m, err := srv.EnableMesh(domino.MeshOptions{})
		if err != nil {
			log.Fatalf("dominod: mesh: %v", err)
		}
		for _, l := range meshLinks {
			if err := m.Add(l); err != nil {
				log.Fatalf("dominod: mesh: %v", err)
			}
			log.Printf("mesh link %s -> %s (glob %q %s %s every %s)",
				l.Name, l.Peer, l.Glob, l.Class, l.Direction, l.Interval)
		}
	}
	// Placement records: pins first (a pin wins over auto-assignment), then
	// rendezvous-assign the remaining pre-opened databases across this mate
	// and its cluster mates.
	for _, decl := range cfg.placements {
		p, err := cfg.directory.SetPlacement(decl.path, decl.home, decl.replicas)
		if err != nil {
			log.Fatalf("dominod: placement %s: %v", decl.path, err)
		}
		log.Printf("placement %s pinned to %s (gen %d)", p.Path, strings.Join(p.Home, ","), p.Generation)
	}
	if cfg.autoPlace > 0 {
		mates := append([]string{cfg.name}, cfg.clusterWith...)
		for _, pre := range cfg.preopen {
			p, err := cfg.directory.AssignPlacement(pre[0], mates, cfg.autoPlace)
			if err != nil {
				log.Fatalf("dominod: placement auto %s: %v", pre[0], err)
			}
			log.Printf("placement %s assigned to %s (gen %d)", p.Path, strings.Join(p.Home, ","), p.Generation)
		}
	}

	stop := make(chan struct{})
	// Router task.
	go func() {
		t := time.NewTicker(cfg.routeTick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st, err := srv.Router().RouteOnce()
				if err != nil {
					log.Printf("router: %v", err)
					continue
				}
				if st.Delivered+st.Forwarded+st.DeadLetter > 0 {
					log.Printf("router: delivered=%d forwarded=%d dead=%d",
						st.Delivered, st.Forwarded, st.DeadLetter)
				}
			}
		}
	}()
	// Replication jobs. Each job selects on its schedule AND on the
	// database's changefeed: local writes trigger a prompt (debounced) push
	// instead of waiting out the polling interval, while the ticker remains
	// the catch-up path for remote changes and missed triggers.
	triggers := make(map[string]*repl.ChangeTrigger)
	for _, job := range cfg.jobs {
		job := job
		jobDB, err := srv.OpenDB(job.dbPath, domino.Options{})
		if err != nil {
			log.Fatalf("dominod: replication db %s: %v", job.dbPath, err)
		}
		trigger := repl.NewChangeTrigger(jobDB, 250*time.Millisecond)
		triggers[strings.ToLower(job.peer)+"|"+job.dbPath] = trigger
		go func() {
			defer trigger.Stop()
			t := time.NewTicker(job.interval)
			defer t.Stop()
			runOnce := func() {
				addr, ok := cfg.peers[strings.ToLower(job.peer)]
				if !ok {
					log.Printf("replicator: no address for peer %s", job.peer)
					return
				}
				st, err := srv.ReplicateWith(job.peer, addr, job.dbPath, repl.Options{})
				if err != nil {
					log.Printf("replicator %s %s: %v", job.peer, job.dbPath, err)
					return
				}
				if st.NotesFetched+st.NotesSent > 0 {
					log.Printf("replicator %s %s: %s", job.peer, job.dbPath, st)
				}
			}
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					runOnce()
				case <-trigger.C():
					runOnce()
				}
			}
		}()
	}
	// When a cluster pusher drops an event (mate down, queue overflow), hand
	// the change to the scheduled replicator for that mate and database so
	// catch-up starts immediately instead of waiting out the interval.
	if len(triggers) > 0 {
		srv.OnClusterDrop(func(mate, dbPath string) {
			if t, ok := triggers[strings.ToLower(mate)+"|"+dbPath]; ok {
				t.Kick()
			}
		})
	}

	// Agent scheduler: one manager per database (save triggers hook once),
	// named agents run on their configured intervals.
	managers := make(map[string]*domino.AgentManager)
	for _, job := range cfg.agents {
		job := job
		mgr, ok := managers[job.dbPath]
		if !ok {
			db, err := srv.OpenDB(job.dbPath, domino.Options{})
			if err != nil {
				log.Fatalf("dominod: agent db %s: %v", job.dbPath, err)
			}
			mgr, err = domino.NewAgentManager(db)
			if err != nil {
				log.Fatalf("dominod: agents in %s: %v", job.dbPath, err)
			}
			managers[job.dbPath] = mgr
		}
		go func() {
			t := time.NewTicker(job.interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					stats, err := mgr.Run(job.name)
					if err != nil {
						log.Printf("agent %s in %s: %v", job.name, job.dbPath, err)
						continue
					}
					if stats.Modified > 0 {
						log.Printf("agent %s in %s: examined=%d selected=%d modified=%d",
							job.name, job.dbPath, stats.Examined, stats.Selected, stats.Modified)
					}
				}
			}
		}()
	}

	// Scheduled backup task: sweep every open database into the backup
	// root. The first run (and every Nth after it, per the cadence) cuts a
	// full image; the runs between append incrementals chained on the USN
	// cursor, so between fulls only the delta is copied.
	if cfg.backupTick > 0 {
		go func() {
			t := time.NewTicker(cfg.backupTick)
			defer t.Stop()
			run := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					full := cfg.backupFullN == 0 || run%cfg.backupFullN == 0
					run++
					n, err := srv.BackupAll(cfg.backupDir, full)
					kind := "incremental"
					if full {
						kind = "full"
					}
					if err != nil {
						log.Printf("backup: %d databases (%s), first error: %v", n, kind, err)
						continue
					}
					log.Printf("backup: %d databases (%s) into %s", n, kind, cfg.backupDir)
				}
			}
		}()
	}

	// Catalog task.
	if cfg.catalogTick > 0 {
		go func() {
			t := time.NewTicker(cfg.catalogTick)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if n, err := srv.RefreshCatalog(); err != nil {
						log.Printf("catalog: %v", err)
					} else {
						log.Printf("catalog: %d entries", n)
					}
				}
			}
		}()
	}

	drainTimeout := cfg.drain
	if drainTimeout <= 0 {
		drainTimeout = 15 * time.Second
	}
	sig := make(chan os.Signal, 4)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGUSR2)
	for s := range sig {
		switch s {
		case syscall.SIGUSR1:
			// Quiesce blocks until drained (or timeout); run it off the signal
			// loop so a SIGUSR2 or SIGTERM during the drain is still handled.
			log.Printf("quiesce requested (draining up to %s)", drainTimeout)
			go func() {
				if err := srv.Quiesce(drainTimeout); err != nil {
					log.Printf("quiesce: %v", err)
				} else {
					log.Print("server RESTRICTED (drained)")
				}
			}()
		case syscall.SIGUSR2:
			srv.Resume()
			log.Print("server resumed (OPEN)")
		default:
			log.Printf("shutting down (draining up to %s)", drainTimeout)
			close(stop)
			if err := srv.Quiesce(drainTimeout); err != nil {
				log.Printf("drain: %v", err)
			}
			if err := srv.Close(); err != nil {
				log.Printf("close: %v", err)
			}
			return
		}
	}
}
