package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mesh"
)

func writeConf(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "server.conf")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseConfigFull(t *testing.T) {
	path := writeConf(t, `
# a comment
name   hub
data   /tmp/data
listen 0.0.0.0:1352
secret s3cret
user   ada pw mail/ada.nsf
user   bob pw2 mail/bob.nsf spoke
user   hub hubsecret
group  team ada,bob
db     apps/app.nsf The App Title
ftindex apps/app.nsf
peer   spoke 10.0.0.2:1352
replicate spoke apps/app.nsf 30s
route  10s
cluster spoke
catalog 5m
fault  seed=7,sever=0.01,delay=0.1,maxdelay=5ms
`)
	cfg, err := parseConfig(path)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.name != "hub" || cfg.data != "/tmp/data" || cfg.listen != "0.0.0.0:1352" || cfg.secret != "s3cret" {
		t.Errorf("basics wrong: %+v", cfg)
	}
	u, ok := cfg.directory.Lookup("bob")
	if !ok || u.MailServer != "spoke" || u.MailFile != "mail/bob.nsf" {
		t.Errorf("bob = %+v, %v", u, ok)
	}
	if groups := cfg.directory.GroupsOf("ada"); len(groups) != 1 || groups[0] != "team" {
		t.Errorf("ada groups = %v", groups)
	}
	if len(cfg.preopen) != 1 || cfg.preopen[0][0] != "apps/app.nsf" || cfg.preopen[0][1] != "The App Title" {
		t.Errorf("preopen = %v", cfg.preopen)
	}
	if len(cfg.ftindex) != 1 || cfg.ftindex[0] != "apps/app.nsf" {
		t.Errorf("ftindex = %v", cfg.ftindex)
	}
	if cfg.peers["spoke"] != "10.0.0.2:1352" {
		t.Errorf("peers = %v", cfg.peers)
	}
	if len(cfg.jobs) != 1 || cfg.jobs[0].interval != 30*time.Second {
		t.Errorf("jobs = %+v", cfg.jobs)
	}
	if cfg.routeTick != 10*time.Second || cfg.catalogTick != 5*time.Minute {
		t.Errorf("ticks = %v %v", cfg.routeTick, cfg.catalogTick)
	}
	if len(cfg.clusterWith) != 1 || cfg.clusterWith[0] != "spoke" {
		t.Errorf("cluster = %v", cfg.clusterWith)
	}
	if cfg.faultSpec != "seed=7,sever=0.01,delay=0.1,maxdelay=5ms" {
		t.Errorf("faultSpec = %q", cfg.faultSpec)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"missing name", "data /tmp\n"},
		{"missing data", "name x\n"},
		{"bad directive", "name x\ndata /tmp\nbogus 1\n"},
		{"bad duration", "name x\ndata /tmp\nroute soon\n"},
		{"user too few", "name x\ndata /tmp\nuser onlyname\n"},
		{"group args", "name x\ndata /tmp\ngroup g\n"},
		{"replicate args", "name x\ndata /tmp\nreplicate spoke db.nsf\n"},
		{"dup user-group", "name x\ndata /tmp\nuser team pw\ngroup team a\n"},
		{"fault args", "name x\ndata /tmp\nfault\n"},
		{"fault bad prob", "name x\ndata /tmp\nfault sever=yes\n"},
		{"fault unknown key", "name x\ndata /tmp\nfault warp=0.5\n"},
	}
	for _, tc := range cases {
		path := writeConf(t, tc.body)
		if _, err := parseConfig(path); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := parseConfig(filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseConfigPlacementDirectives(t *testing.T) {
	path := writeConf(t, `
name  hub
data  /tmp/data
db    apps/app.nsf App
advertise 10.0.0.1:1352
placement apps/app.nsf hub,spoke 2
placement auto 2
`)
	cfg, err := parseConfig(path)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.advertise != "10.0.0.1:1352" {
		t.Errorf("advertise = %q", cfg.advertise)
	}
	if len(cfg.placements) != 1 {
		t.Fatalf("placements = %+v", cfg.placements)
	}
	decl := cfg.placements[0]
	if decl.path != "apps/app.nsf" || len(decl.home) != 2 || decl.home[0] != "hub" ||
		decl.home[1] != "spoke" || decl.replicas != 2 {
		t.Errorf("placement decl = %+v", decl)
	}
	if cfg.autoPlace != 2 {
		t.Errorf("autoPlace = %d", cfg.autoPlace)
	}
	for _, body := range []string{
		"name x\ndata /tmp\nadvertise\n",
		"name x\ndata /tmp\nplacement\n",
		"name x\ndata /tmp\nplacement db.nsf\n",
		"name x\ndata /tmp\nplacement db.nsf hub zero\n",
		"name x\ndata /tmp\nplacement db.nsf hub 0\n",
		"name x\ndata /tmp\nplacement auto\n",
		"name x\ndata /tmp\nplacement auto -1\n",
	} {
		if _, err := parseConfig(writeConf(t, body)); err == nil {
			t.Errorf("config accepted: %q", body)
		}
	}
}

func TestParseConfigBackupDirectives(t *testing.T) {
	path := writeConf(t, `
name  hub
data  /tmp/data
syncwal
archivelog /var/walog
backup /var/backup 6h 4
`)
	cfg, err := parseConfig(path)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if !cfg.syncWAL {
		t.Error("syncwal directive ignored")
	}
	if cfg.archiveLog != "/var/walog" {
		t.Errorf("archivelog = %q", cfg.archiveLog)
	}
	if cfg.backupDir != "/var/backup" || cfg.backupTick != 6*time.Hour || cfg.backupFullN != 4 {
		t.Errorf("backup = %q %v %d", cfg.backupDir, cfg.backupTick, cfg.backupFullN)
	}
}

func TestParseConfigBackupDefaultsAndErrors(t *testing.T) {
	cfg, err := parseConfig(writeConf(t, "name x\ndata /tmp\nbackup /b 1h\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.backupFullN != 0 {
		t.Errorf("default full cadence = %d, want 0 (always full)", cfg.backupFullN)
	}
	for _, body := range []string{
		"name x\ndata /tmp\nsyncwal on\n",
		"name x\ndata /tmp\narchivelog\n",
		"name x\ndata /tmp\nbackup /b\n",
		"name x\ndata /tmp\nbackup /b soon\n",
		"name x\ndata /tmp\nbackup /b 1h -2\n",
	} {
		if _, err := parseConfig(writeConf(t, body)); err == nil {
			t.Errorf("config accepted: %q", body)
		}
	}
}

func TestParseConfigMeshDirectives(t *testing.T) {
	path := writeConf(t, `
name  hub
data  /tmp/data
meshlink east spoke *.nsf hot 30s both
meshlink west rim disc.nsf cold 5m pull Priority >= 3
topology /var/domino/mesh.topo
`)
	cfg, err := parseConfig(path)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if len(cfg.meshLinks) != 2 {
		t.Fatalf("meshLinks = %+v", cfg.meshLinks)
	}
	east := cfg.meshLinks[0]
	if east.Name != "east" || east.Peer != "spoke" || east.Glob != "*.nsf" ||
		east.Class != mesh.Hot || east.Interval != 30*time.Second ||
		east.Direction != mesh.Both || east.Formula != "" {
		t.Errorf("east = %+v", east)
	}
	west := cfg.meshLinks[1]
	if west.Class != mesh.Cold || west.Direction != mesh.Pull ||
		west.Formula != "Priority >= 3" || west.Interval != 5*time.Minute {
		t.Errorf("west = %+v", west)
	}
	if cfg.topoPath != "/var/domino/mesh.topo" {
		t.Errorf("topoPath = %q", cfg.topoPath)
	}
	for _, body := range []string{
		"name x\ndata /tmp\nmeshlink short spoke\n",
		"name x\ndata /tmp\nmeshlink l spoke * warm 30s both\n",
		"name x\ndata /tmp\nmeshlink l spoke * hot soon both\n",
		"name x\ndata /tmp\nmeshlink l spoke * hot 30s sideways\n",
		"name x\ndata /tmp\ntopology\n",
	} {
		if _, err := parseConfig(writeConf(t, body)); err == nil {
			t.Errorf("config accepted: %q", body)
		}
	}
}
