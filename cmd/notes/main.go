// Command notes is the workstation client: it talks to a dominod server
// over the wire protocol to create, read, and delete documents, render
// views, run full-text queries, and send mail.
//
// Usage:
//
//	notes -server HOST:PORT -user NAME -secret SECRET <command> [args]
//
// Commands:
//
//	create -db PATH item=value [item=value...]   create a document
//	putbatch -db PATH                            bulk-load documents from
//	                                             stdin, one per line of
//	                                             item=value pairs, in one
//	                                             pipelined round trip
//	get    -db PATH -unid UNID                   print a document
//	delete -db PATH -unid UNID                   delete a document
//	view   -db PATH -name VIEW [-start N -limit N]  render a view (one page
//	                                             with -limit, else all pages)
//	search -db PATH -query QUERY [-columns A,B]  full-text search, optionally
//	       [-start N -limit N]                   with pre-joined columns
//	scan   -db PATH [-formula F] [-columns A,B]  formula-filtered bulk scan
//	       [-limit N]                            with typed projections
//	mail   -to A,B -subject S -body TEXT         deposit mail for routing
//	info   -db PATH                              database information
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	domino "repro"
)

func main() {
	server := flag.String("server", "127.0.0.1:1352", "server address")
	user := flag.String("user", "", "user name")
	secret := flag.String("secret", "", "user secret")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "notes: missing command (create|putbatch|get|delete|view|search|scan|mail|info)")
		os.Exit(2)
	}
	if *user == "" {
		log.Fatal("notes: -user is required")
	}
	client, err := domino.Dial(*server, *user, *secret)
	if err != nil {
		log.Fatalf("notes: %v", err)
	}
	defer client.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var cmdErr error
	switch cmd {
	case "create":
		cmdErr = cmdCreate(client, args)
	case "putbatch":
		cmdErr = cmdPutBatch(client, args)
	case "get":
		cmdErr = cmdGet(client, args)
	case "delete":
		cmdErr = cmdDelete(client, args)
	case "view":
		cmdErr = cmdView(client, args)
	case "search":
		cmdErr = cmdSearch(client, args)
	case "scan":
		cmdErr = cmdScan(client, args)
	case "mail":
		cmdErr = cmdMail(client, *user, args)
	case "info":
		cmdErr = cmdInfo(client, args)
	default:
		cmdErr = fmt.Errorf("unknown command %q", cmd)
	}
	if cmdErr != nil {
		log.Fatalf("notes: %v", cmdErr)
	}
}

func cmdCreate(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("create: -db is required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	n := domino.NewDocument()
	for _, kv := range fs.Args() {
		key, value, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("create: item %q is not name=value", kv)
		}
		if num, err := strconv.ParseFloat(value, 64); err == nil {
			n.SetNumber(key, num)
		} else {
			n.SetText(key, strings.Split(value, ",")...)
		}
	}
	if err := db.Create(n); err != nil {
		return err
	}
	fmt.Printf("created %s (note id %d)\n", n.OID.UNID, n.ID)
	return nil
}

// cmdPutBatch bulk-loads documents from stdin — one document per line of
// whitespace-separated item=value pairs — through the pipelined batch
// operation: one round trip, one admission slot, one amortized WAL force.
func cmdPutBatch(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("putbatch", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("putbatch: -db is required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	var notes []*domino.Note
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n := domino.NewDocument()
		for _, kv := range strings.Fields(line) {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("putbatch: document %d: item %q is not name=value", len(notes)+1, kv)
			}
			if num, err := strconv.ParseFloat(value, 64); err == nil {
				n.SetNumber(key, num)
			} else {
				n.SetText(key, strings.Split(value, ",")...)
			}
		}
		notes = append(notes, n)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("putbatch: read stdin: %w", err)
	}
	stored, err := db.PutBatch(notes)
	if err != nil {
		return fmt.Errorf("putbatch: stored %d of %d: %w", stored, len(notes), err)
	}
	fmt.Printf("stored %d documents\n", stored)
	return nil
}

func parseUNIDFlag(fs *flag.FlagSet, args []string) (string, domino.UNID, error) {
	dbPath := fs.String("db", "", "database path")
	unidStr := fs.String("unid", "", "document UNID")
	fs.Parse(args)
	var zero domino.UNID
	if *dbPath == "" || *unidStr == "" {
		return "", zero, fmt.Errorf("-db and -unid are required")
	}
	unid, err := parseUNID(*unidStr)
	if err != nil {
		return "", zero, err
	}
	return *dbPath, unid, nil
}

func parseUNID(s string) (domino.UNID, error) {
	var u domino.UNID
	b, err := hexDecode(s)
	if err != nil || len(b) != 16 {
		return u, fmt.Errorf("bad UNID %q", s)
	}
	copy(u[:], b)
	return u, nil
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		v, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

func cmdGet(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	dbPath, unid, err := parseUNIDFlag(fs, args)
	if err != nil {
		return err
	}
	db, err := c.OpenDB(dbPath)
	if err != nil {
		return err
	}
	n, err := db.Get(unid)
	if err != nil {
		return err
	}
	fmt.Printf("UNID:     %s\n", n.OID.UNID)
	fmt.Printf("NoteID:   %d\n", n.ID)
	fmt.Printf("Version:  seq %d @ %s\n", n.OID.Seq, n.OID.SeqTime)
	fmt.Printf("Created:  %s\n", n.Created)
	fmt.Printf("Modified: %s\n", n.Modified)
	for _, it := range n.Items {
		fmt.Printf("  %-20s = %s\n", it.Name, it.Value.String())
	}
	return nil
}

func cmdDelete(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	dbPath, unid, err := parseUNIDFlag(fs, args)
	if err != nil {
		return err
	}
	db, err := c.OpenDB(dbPath)
	if err != nil {
		return err
	}
	if err := db.Delete(unid); err != nil {
		return err
	}
	fmt.Printf("deleted %s\n", unid)
	return nil
}

func printViewRow(r domino.RemoteViewRow) {
	indent := strings.Repeat("  ", r.Indent)
	// Category rows are marked structurally, so a document that renders
	// zero columns still prints as a document.
	if r.IsCategory {
		fmt.Printf("%s[%s]\n", indent, r.Category)
		return
	}
	fmt.Printf("%s%s  (%s)\n", indent, strings.Join(r.Columns, " | "), r.UNID)
}

func cmdView(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	name := fs.String("name", "", "view name")
	start := fs.Int("start", 0, "first row index (with -limit)")
	limit := fs.Int("limit", 0, "rows per page; 0 streams the whole view")
	fs.Parse(args)
	if *dbPath == "" || *name == "" {
		return fmt.Errorf("view: -db and -name are required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	if *limit > 0 {
		p, err := db.ViewPage(*name, *start, *limit)
		if err != nil {
			return err
		}
		for _, r := range p.Rows {
			printViewRow(r)
		}
		fmt.Printf("rows %d-%d of %d", p.Start, p.Next, p.Total)
		if p.More {
			fmt.Printf(" (next page: -start %d)", p.Next)
		}
		fmt.Println()
		return nil
	}
	rows, err := db.ViewRows(*name)
	if err != nil {
		return err
	}
	for _, r := range rows {
		printViewRow(r)
	}
	fmt.Printf("%d rows\n", len(rows))
	return nil
}

func cmdSearch(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	query := fs.String("query", "", "full-text query")
	columns := fs.String("columns", "", "comma-separated summary items to join onto each hit")
	start := fs.Int("start", 0, "first hit index")
	limit := fs.Int("limit", 0, "hits per page; 0 uses the server page size")
	fs.Parse(args)
	if *dbPath == "" || *query == "" {
		return fmt.Errorf("search: -db and -query are required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	var cols []string
	if *columns != "" {
		cols = strings.Split(*columns, ",")
	}
	p, err := db.SearchPage(*query, cols, *start, *limit)
	if err != nil {
		return err
	}
	for _, h := range p.Hits {
		fmt.Printf("%8.3f  %s", h.Score, h.UNID)
		for i, v := range h.Values {
			fmt.Printf("  %s=%s", cols[i], v.String())
		}
		fmt.Println()
	}
	fmt.Printf("hits %d-%d of %d", p.Start, p.Next, p.Total)
	if p.More {
		fmt.Printf(" (next page: -start %d)", p.Next)
	}
	fmt.Println()
	return nil
}

// cmdScan streams a formula-filtered, item-projected bulk scan: every
// matching document in NoteID order, any size database, in bounded pages.
func cmdScan(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	formulaSrc := fs.String("formula", "", "selection formula (empty selects all)")
	columns := fs.String("columns", "", "comma-separated items to project")
	limit := fs.Int("limit", 0, "rows per page; 0 uses the server page size")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("scan: -db is required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	opts := domino.ScanOptions{Formula: *formulaSrc, Limit: *limit}
	if *columns != "" {
		opts.Columns = strings.Split(*columns, ",")
	}
	count := 0
	err = db.Scan(opts, func(row domino.ScanRow) bool {
		fmt.Printf("%s", row.UNID)
		for i, v := range row.Values {
			if v.Type == 0 {
				fmt.Printf("  %s=<absent>", opts.Columns[i])
			} else {
				fmt.Printf("  %s=%s", opts.Columns[i], v.String())
			}
		}
		fmt.Println()
		count++
		return true
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d documents\n", count)
	return nil
}

func cmdMail(c *domino.Client, from string, args []string) error {
	fs := flag.NewFlagSet("mail", flag.ExitOnError)
	to := fs.String("to", "", "comma-separated recipients")
	subject := fs.String("subject", "", "subject line")
	body := fs.String("body", "", "message body")
	fs.Parse(args)
	if *to == "" {
		return fmt.Errorf("mail: -to is required")
	}
	m := domino.NewDocument()
	m.SetText("Form", "Memo")
	m.SetText("SendTo", strings.Split(*to, ",")...)
	m.SetText("From", from)
	m.SetText("Subject", *subject)
	m.SetText("Body", *body)
	if err := c.MailDeposit(m); err != nil {
		return err
	}
	fmt.Println("mail deposited for routing")
	return nil
}

func cmdInfo(c *domino.Client, args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dbPath := fs.String("db", "", "database path")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("info: -db is required")
	}
	db, err := c.OpenDB(*dbPath)
	if err != nil {
		return err
	}
	replica, _ := db.ReplicaID()
	fmt.Printf("path:    %s\n", db.Path())
	fmt.Printf("title:   %s\n", db.Title())
	fmt.Printf("replica: %s\n", replica)
	return nil
}
