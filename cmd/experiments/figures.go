package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	domino "repro"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/store"
	"repro/internal/workload"
)

func storeNoCheckpoint() store.Options { return store.Options{CheckpointEvery: -1} }

// --- F1: incremental replication vs full copy across delta sizes ---

func runF1(quick bool) {
	corpus := pick(quick, 2000, 400)
	t := newTable("changed", "incremental ms", "incr bytes", "full-copy ms", "full bytes", "bytes saved")
	for _, pct := range []int{1, 10, 50, 100} {
		replica := domino.NewReplicaID()
		a := tempDB("f1-a", replica)
		b := tempDB("f1-b", replica)
		g := workload.New(11)
		docs := seedDocs(a, g, corpus, 512)
		mustReplicate(b, a, "a")
		// Mutate pct% of the corpus at a.
		sess := a.Session("exp")
		delta := corpus * pct / 100
		for i := 0; i < delta; i++ {
			g.Mutate(docs[i])
			if err := sess.Update(docs[i]); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		st := mustReplicate(b, a, "a")
		incTime := time.Since(start)
		incBytes := st.BytesIn + st.BytesOut

		// Full-copy baseline over the same pair (state already converged, so
		// the transfer volume is the whole database either way).
		start = time.Now()
		fc, err := repl.FullCopy(b, &repl.LocalPeer{DB: a})
		if err != nil {
			log.Fatal(err)
		}
		fullTime := time.Since(start)
		fullBytes := fc.BytesIn + fc.BytesOut
		saved := fmt.Sprintf("%.0f%%", 100*(1-float64(incBytes)/float64(fullBytes)))
		t.add(fmt.Sprintf("%d%%", pct), ms(incTime), incBytes, ms(fullTime), fullBytes, saved)
		a.Close()
		b.Close()
	}
	t.print()
	fmt.Println("  (shape check: incremental cost tracks the delta; full copy always pays for everything)")
}

// --- F2: conflict outcomes vs concurrent-edit overlap probability ---

func runF2(quick bool) {
	docs := pick(quick, 300, 60)
	t := newTable("overlap prob", "conflicting docs", "conflict docs (no merge)", "conflict docs (merge)", "merged")
	for _, overlap := range []float64{0.0, 0.25, 0.5, 1.0} {
		type result struct{ conflicts, merged int }
		results := make(map[bool]result)
		for _, merge := range []bool{false, true} {
			replica := domino.NewReplicaID()
			a := tempDB("f2-a", replica)
			b := tempDB("f2-b", replica)
			g := workload.New(12)
			rng := rand.New(rand.NewSource(int64(overlap*100) + 7))
			seeded := seedDocs(a, g, docs, 256)
			mustReplicate(b, a, "a")
			// Concurrent edits: each doc edited on both replicas; with
			// probability `overlap` both writers touch the same item.
			sa, sb := a.Session("alice"), b.Session("bob")
			for _, d := range seeded {
				da, err := sa.Get(d.OID.UNID)
				if err != nil {
					log.Fatal(err)
				}
				db2, err := sb.Get(d.OID.UNID)
				if err != nil {
					log.Fatal(err)
				}
				if rng.Float64() < overlap {
					da.SetText("Body", "alice version")
					db2.SetText("Body", "bob version")
				} else {
					da.SetText("AliceNotes", "from alice")
					db2.SetText("BobNotes", "from bob")
				}
				if err := sa.Update(da); err != nil {
					log.Fatal(err)
				}
				if err := sb.Update(db2); err != nil {
					log.Fatal(err)
				}
			}
			opts := domino.ReplicationOptions{PeerName: "a", Apply: domino.ApplyOptions{FieldMerge: merge}}
			st1, err := domino.Replicate(b, &domino.LocalPeer{DB: a, Opts: opts.Apply}, opts)
			if err != nil {
				log.Fatal(err)
			}
			st2, err := domino.Replicate(b, &domino.LocalPeer{DB: a, Opts: opts.Apply}, opts)
			if err != nil {
				log.Fatal(err)
			}
			_ = st1
			_ = st2
			conflicts := 0
			b.ScanAll(func(n *domino.Note) bool {
				if n.IsConflict() {
					conflicts++
				}
				return true
			})
			merges := st1.Pull.Merged + st1.Push.Merged + st2.Pull.Merged + st2.Push.Merged
			results[merge] = result{conflicts: conflicts, merged: merges}
			a.Close()
			b.Close()
		}
		t.add(fmt.Sprintf("%.0f%%", overlap*100), docs,
			results[false].conflicts, results[true].conflicts, results[true].merged)
	}
	t.print()
	fmt.Println("  (shape check: field merge eliminates conflicts for disjoint edits;")
	fmt.Println("   at 100% overlap both modes degenerate to one conflict doc per doc)")
}

// --- F4: topology convergence: hub-and-spoke vs ring ---

func runF4(quick bool) {
	nReplicas := 8
	docsEach := pick(quick, 20, 5)
	t := newTable("topology", "replicas", "rounds to converge", "sessions", "bytes moved")
	for _, topo := range []string{"hub-spoke", "ring"} {
		replica := domino.NewReplicaID()
		dbs := make([]*domino.Database, nReplicas)
		for i := range dbs {
			dbs[i] = tempDB(fmt.Sprintf("f4-%d", i), replica)
			g := workload.New(int64(100 + i))
			seedDocs(dbs[i], g, docsEach, 256)
		}
		rounds, sessions, bytes := 0, 0, int64(0)
		for rounds = 1; rounds <= 20; rounds++ {
			switch topo {
			case "hub-spoke":
				// Hub (replica 0) replicates with each spoke.
				for i := 1; i < nReplicas; i++ {
					st := mustReplicate(dbs[0], dbs[i], fmt.Sprintf("r%d", i))
					sessions++
					bytes += st.BytesIn + st.BytesOut
				}
			case "ring":
				for i := 0; i < nReplicas; i++ {
					j := (i + 1) % nReplicas
					st, err := domino.Replicate(dbs[i], &domino.LocalPeer{DB: dbs[j]},
						domino.ReplicationOptions{PeerName: fmt.Sprintf("r%d", j)})
					if err != nil {
						log.Fatal(err)
					}
					sessions++
					bytes += st.BytesIn + st.BytesOut
				}
			}
			if converged(dbs) {
				break
			}
		}
		t.add(topo, nReplicas, rounds, sessions, bytes)
		for _, db := range dbs {
			db.Close()
		}
	}
	t.print()
	fmt.Println("  (shape check: both topologies converge in ~2 sequential passes because")
	fmt.Println("   changes cascade within a pass; the ring pays more sessions and bytes)")
}

// converged checks all replicas hold the same document fingerprint set.
func converged(dbs []*domino.Database) bool {
	fingerprint := func(db *domino.Database) map[string]bool {
		out := make(map[string]bool)
		db.ScanAll(func(n *domino.Note) bool {
			if n.Class == domino.ClassDocument {
				out[fmt.Sprintf("%s/%d/%d", n.OID.UNID, n.OID.Seq, n.OID.SeqTime)] = true
			}
			return true
		})
		return out
	}
	base := fingerprint(dbs[0])
	for _, db := range dbs[1:] {
		fp := fingerprint(db)
		if len(fp) != len(base) {
			return false
		}
		for k := range base {
			if !fp[k] {
				return false
			}
		}
	}
	return true
}

// --- T6: mail routing throughput ---

func runT6(quick bool) {
	msgs := pick(quick, 500, 50)
	t := newTable("path", "messages", "ms total", "µs/message")
	// Local delivery.
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", MailFile: "mail/ada.nsf"})
	mailbox := tempDB("t6-box", domino.NewReplicaID())
	inbox := tempDB("t6-inbox", domino.NewReplicaID())
	defer mailbox.Close()
	defer inbox.Close()
	r := &domino.Router{
		ServerName:   "local",
		Mailbox:      mailbox,
		Directory:    d,
		OpenMailFile: func(string) (*domino.Database, error) { return inbox, nil },
	}
	g := workload.New(13)
	for i := 0; i < msgs; i++ {
		m := g.Document(512)
		m.SetText(router.ItemSendTo, "ada")
		if err := r.Deposit(m); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	st, err := r.RouteOnce()
	if err != nil {
		log.Fatal(err)
	}
	local := time.Since(start)
	if st.Delivered != msgs {
		log.Fatalf("delivered %d of %d", st.Delivered, msgs)
	}
	t.add("local delivery", msgs, ms(local), us(local/time.Duration(msgs)))

	// Cross-server over loopback TCP.
	base, _ := os.MkdirTemp("", "domino-t6")
	dir2 := domino.NewDirectory()
	dir2.AddUser(domino.User{Name: "bob", Secret: "pw", MailFile: "mail/bob.nsf", MailServer: "remote"})
	dir2.AddUser(domino.User{Name: "hub", Secret: "s1"})
	dir2.AddUser(domino.User{Name: "remote", Secret: "s2"})
	hub, err := domino.NewServer(domino.ServerOptions{
		Name: "hub", DataDir: filepath.Join(base, "hub"), Directory: dir2, PeerSecret: "s1"})
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	remote, err := domino.NewServer(domino.ServerOptions{
		Name: "remote", DataDir: filepath.Join(base, "remote"), Directory: dir2, PeerSecret: "s2"})
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	remoteAddr, err := remote.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hub.SetPeers(map[string]string{"remote": remoteAddr})
	wireMsgs := pick(quick, 200, 20)
	for i := 0; i < wireMsgs; i++ {
		m := g.Document(512)
		m.SetText(router.ItemSendTo, "bob")
		if err := hub.Router().Deposit(m); err != nil {
			log.Fatal(err)
		}
	}
	start = time.Now()
	if _, err := hub.Router().RouteOnce(); err != nil {
		log.Fatal(err)
	}
	if _, err := remote.Router().RouteOnce(); err != nil {
		log.Fatal(err)
	}
	wireTime := time.Since(start)
	t.add("cross-server (TCP)", wireMsgs, ms(wireTime), us(wireTime/time.Duration(wireMsgs)))
	t.print()
	fmt.Println("  (shape check: cross-server routing pays per-message wire overhead)")
}

// --- F5: B+tree lookups vs scan, via the public store surface ---

func runF5(quick bool) {
	sizes := []int{10000, 100000}
	if quick {
		sizes = []int{2000, 20000}
	}
	t := newTable("notes", "indexed get µs", "scan-to-find ms", "speedup")
	for _, n := range sizes {
		db := tempDB("f5", domino.NewReplicaID())
		g := workload.New(14)
		sess := db.Session("exp")
		docs := make([]*domino.Note, n)
		for i := range docs {
			doc := g.Document(64)
			if err := sess.Create(doc); err != nil {
				log.Fatal(err)
			}
			docs[i] = doc
		}
		rng := rand.New(rand.NewSource(9))
		reps := pick(quick, 2000, 200)
		indexed := timeOps(reps, func() {
			for i := 0; i < reps; i++ {
				if _, err := sess.Get(docs[rng.Intn(n)].OID.UNID); err != nil {
					log.Fatal(err)
				}
			}
		})
		scanReps := pick(quick, 5, 2)
		scan := timeOps(scanReps, func() {
			for i := 0; i < scanReps; i++ {
				want := docs[rng.Intn(n)].OID.UNID
				db.ScanAll(func(x *domino.Note) bool { return x.OID.UNID != want })
			}
		})
		t.add(n, us(indexed), ms(scan), fmt.Sprintf("%.0fx", float64(scan)/float64(indexed)))
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: indexed lookups stay ~flat; scans grow linearly)")
}
