package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	domino "repro"
	"repro/internal/store"
	"repro/internal/workload"
)

// --- W3: online backup and media recovery ---
//
// Three claims from DESIGN.md §8:
//
//  1. Incremental backup cost scales with the delta, not the database:
//     an incremental image after touching k notes is a small fraction of a
//     full image's bytes and time.
//  2. Hot backup never blocks the commit path: Put latency while a full
//     backup streams the page file is indistinguishable from idle.
//  3. Restore and point-in-time recovery are fast and exact: full image +
//     incremental chain + archived-log replay reach the requested USN.

// w3Result is one measured row, serialized to BENCH_backup.json as the
// regression baseline.
type w3Result struct {
	Phase     string  `json:"phase"`      // "backup", "hot-put", "restore"
	Label     string  `json:"label"`      // row name within the phase
	DeltaDocs int     `json:"delta_docs"` // notes touched since the previous image
	Bytes     int64   `json:"bytes"`      // image size (backup rows)
	Millis    float64 `json:"millis"`     // wall time of the operation
	USN       uint64  `json:"usn"`        // USN the row ends at
}

func runW3(quick bool) {
	docs := pick(quick, 4000, 600)
	body := 1024
	deltas := []int{docs / 100, docs / 20, docs / 5} // 1%, 5%, 20%

	root, err := os.MkdirTemp("", "domino-w3")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	arcDir := filepath.Join(root, "walog")
	setDir := filepath.Join(root, "bak")
	db, err := domino.Open(filepath.Join(root, "src.nsf"), domino.Options{
		Title: "w3",
		Store: store.Options{ArchiveDir: arcDir},
	})
	if err != nil {
		log.Fatal(err)
	}

	g := workload.New(42)
	corpus := seedDocs(db, g, docs, body)
	sess := db.Session("exp")
	var results []w3Result

	// Phase 1: full image cost, then incremental cost per delta size.
	bt := newTable("image", "delta docs", "MB", "ms", "MB vs full %")
	start := time.Now()
	full, err := db.Backup(setDir)
	if err != nil {
		log.Fatal(err)
	}
	fullMs := float64(time.Since(start).Microseconds()) / 1e3
	results = append(results, w3Result{
		Phase: "backup", Label: "full", DeltaDocs: docs,
		Bytes: full.Size, Millis: fullMs, USN: full.EndUSN,
	})
	bt.add("full", docs, float64(full.Size)/1e6, fullMs, 100.0)
	lastIncrUSN := full.EndUSN
	for round, k := range deltas {
		for i := 0; i < k; i++ {
			n, err := sess.Get(corpus[(i*31+round*17)%len(corpus)].OID.UNID)
			if err != nil {
				log.Fatal(err)
			}
			g.Mutate(n)
			if err := sess.Update(n); err != nil {
				log.Fatal(err)
			}
		}
		start = time.Now()
		img, err := db.BackupIncremental(setDir)
		if err != nil {
			log.Fatal(err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		results = append(results, w3Result{
			Phase: "backup", Label: fmt.Sprintf("incr-%dpct", 100*k/docs),
			DeltaDocs: k, Bytes: img.Size, Millis: ms, USN: img.EndUSN,
		})
		bt.add(fmt.Sprintf("incr (%d%%)", 100*k/docs), k,
			float64(img.Size)/1e6, ms, 100*float64(img.Size)/float64(full.Size))
		lastIncrUSN = img.EndUSN
	}
	bt.print()

	// Phase 2: Put latency with an idle backup subsystem vs while a full
	// backup streams the database. The hot-backup design claim is that the
	// two distributions match — commits never wait on the copy.
	measurePuts := func(n int) (p50, p95 float64) {
		lats := make([]time.Duration, 0, n)
		for _, doc := range g.Corpus(n, body) {
			t0 := time.Now()
			if err := sess.Create(doc); err != nil {
				log.Fatal(err)
			}
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(percentile(lats, 0.50).Nanoseconds()) / 1e3,
			float64(percentile(lats, 0.95).Nanoseconds()) / 1e3
	}
	putN := pick(quick, 800, 150)
	idle50, idle95 := measurePuts(putN)
	backupDone := make(chan error, 1)
	go func() {
		_, err := db.Backup(setDir)
		backupDone <- err
	}()
	hot50, hot95 := measurePuts(putN)
	if err := <-backupDone; err != nil {
		log.Fatal(err)
	}
	results = append(results,
		w3Result{Phase: "hot-put", Label: "idle", Millis: idle50 / 1e3, USN: uint64(putN)},
		w3Result{Phase: "hot-put", Label: "during-backup", Millis: hot50 / 1e3, USN: uint64(putN)})
	ht := newTable("writer state", "p50 µs", "p95 µs")
	ht.add("backup idle", idle50, idle95)
	ht.add("backup running", hot50, hot95)
	ht.print()
	fmt.Printf("  -> hot backup put-latency ratio p50 %.2fx (1.0 = no interference)\n",
		hot50/idle50)

	// Phase 3: restore and PITR. Write past the last image so the tail
	// lives only in the archived log, close the source to seal it, then
	// time three recoveries.
	tailDocs := pick(quick, 400, 80)
	seedDocs(db, g, tailDocs, body)
	lastUSN := db.LastUSN()
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	rt := newTable("scenario", "target USN", "notes", "archive recs", "ms")
	restore := func(label string, target uint64) {
		dst := filepath.Join(root, label+".nsf")
		start := time.Now()
		rdb, info, err := domino.RestoreDatabase(setDir, dst,
			domino.RestoreOptions{TargetUSN: target, ArchiveDir: arcDir}, domino.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		count := rdb.Count()
		rdb.Close()
		results = append(results, w3Result{
			Phase: "restore", Label: label, DeltaDocs: count,
			Millis: ms, USN: info.ReachedUSN,
		})
		rt.add(label, info.ReachedUSN, count, info.ArchiveRecords, ms)
	}
	restore("full-only", full.EndUSN)
	restore("full-plus-incrementals", lastIncrUSN)
	restore("pitr-latest", lastUSN)
	restore("pitr-mid-archive", lastUSN-uint64(tailDocs)/2)
	rt.print()

	f, err := os.Create("BENCH_backup.json")
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to BENCH_backup.json")
}
