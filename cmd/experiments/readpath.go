package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	domino "repro"
	"repro/internal/store"
	"repro/internal/workload"
)

// --- W4: read path under concurrent writes ---
//
// The tentpole claim of the RW-latch work: point reads scale past a
// sustained writer instead of queuing behind it, and a full scan no longer
// holds the store latch across its callback, so writers are never stalled
// for a whole scan. The "serialized" rows run the same store with
// Options.SerializeReads, which restores the seed's single-semaphore
// discipline (exclusive latch for reads, latch-held scans, no note cache)
// as the measured baseline.

// w4Result is one measured configuration, serialized to
// BENCH_readpath.json as the regression baseline.
type w4Result struct {
	Phase       string  `json:"phase"`
	Mode        string  `json:"mode"`
	Docs        int     `json:"docs"`
	Readers     int     `json:"readers,omitempty"`
	Reads       int64   `json:"reads,omitempty"`
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`
	WriterOps   int64   `json:"writer_ops,omitempty"`
	PutP50us    float64 `json:"put_p50_us,omitempty"`
	PutP99us    float64 `json:"put_p99_us,omitempty"`
	ScanAvgMs   float64 `json:"scan_avg_ms,omitempty"`
	CacheHits   uint64  `json:"cache_hits,omitempty"`
	CacheMisses uint64  `json:"cache_misses,omitempty"`
	HitRate     float64 `json:"hit_rate,omitempty"`
}

// w4DB opens a database with explicit store options.
func w4DB(title string, opts store.Options) *domino.Database {
	dir, err := os.MkdirTemp("", "domino-exp")
	if err != nil {
		log.Fatal(err)
	}
	db, err := domino.Open(filepath.Join(dir, "exp.nsf"),
		domino.Options{Title: title, ReplicaID: domino.NewReplicaID(), Store: opts})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// w4Modes are the two latching disciplines under comparison.
var w4Modes = []struct {
	name string
	opts store.Options
}{
	{"serialized", store.Options{SerializeReads: true}},
	{"rw+cache", store.Options{}},
}

// w4ReadThroughput measures RawGet throughput from `readers` goroutines
// while one writer continuously updates documents.
func w4ReadThroughput(mode string, opts store.Options, docs, readers int, dur time.Duration) w4Result {
	db := w4DB("w4a", opts)
	defer db.Close()
	g := workload.New(41)
	corpus := seedDocs(db, g, docs, 512)

	var stop atomic.Bool
	var writerOps atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wmut := workload.New(43)
		sess := db.Session("writer")
		for i := 0; !stop.Load(); i++ {
			d := corpus[i%len(corpus)].Clone()
			wmut.Mutate(d)
			if err := sess.Update(d); err != nil {
				log.Fatal(err)
			}
			writerOps.Add(1)
		}
	}()

	// 90/10 hot-set access: most reads hit a tenth of the corpus, the rest
	// roam the whole file — the usual shape of a mail file or discussion
	// database, and what a bounded cache is for.
	hot := len(corpus) / 10
	if hot == 0 {
		hot = 1
	}
	var reads atomic.Int64
	deadline := time.Now().Add(dur)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; time.Now().Before(deadline); i++ {
				j := r*7919 + i
				var u domino.UNID
				if i%10 != 9 {
					u = corpus[j*31%hot].OID.UNID
				} else {
					u = corpus[j%len(corpus)].OID.UNID
				}
				if _, err := db.RawGet(u); err != nil {
					log.Fatal(err)
				}
				n++
			}
			reads.Add(n)
		}(r)
	}
	// Wait out the measurement window, then stop the writer.
	time.Sleep(time.Until(deadline))
	stop.Store(true)
	wg.Wait()

	st := db.Stats()
	res := w4Result{
		Phase:       "read-throughput",
		Mode:        mode,
		Docs:        docs,
		Readers:     readers,
		Reads:       reads.Load(),
		ReadsPerSec: float64(reads.Load()) / dur.Seconds(),
		WriterOps:   writerOps.Load(),
		CacheHits:   st.NoteCacheHits,
		CacheMisses: st.NoteCacheMisses,
	}
	if total := st.NoteCacheHits + st.NoteCacheMisses; total > 0 {
		res.HitRate = float64(st.NoteCacheHits) / float64(total)
	}
	return res
}

// w4ScanInterference measures Put latency while full scans run
// back-to-back: the serialized discipline makes the writer wait out whole
// scans (p99 ≈ scan length); snapshot scans keep it µs-scale.
func w4ScanInterference(mode string, opts store.Options, docs, puts int) w4Result {
	db := w4DB("w4b", opts)
	defer db.Close()
	g := workload.New(47)
	corpus := seedDocs(db, g, docs, 512)

	var stop atomic.Bool
	var scans atomic.Int64
	var scanNanos atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			start := time.Now()
			if err := db.ScanAll(func(*domino.Note) bool { return true }); err != nil {
				log.Fatal(err)
			}
			scans.Add(1)
			scanNanos.Add(time.Since(start).Nanoseconds())
		}
	}()

	sess := db.Session("writer")
	wmut := workload.New(53)
	lats := make([]time.Duration, 0, puts)
	for i := 0; i < puts; i++ {
		d := corpus[i%len(corpus)].Clone()
		wmut.Mutate(d)
		start := time.Now()
		if err := sess.Update(d); err != nil {
			log.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	stop.Store(true)
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	toUs := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	res := w4Result{
		Phase:     "scan-interference",
		Mode:      mode,
		Docs:      docs,
		WriterOps: int64(puts),
		PutP50us:  toUs(percentile(lats, 0.50)),
		PutP99us:  toUs(percentile(lats, 0.99)),
	}
	if s := scans.Load(); s > 0 {
		res.ScanAvgMs = float64(scanNanos.Load()) / float64(s) / 1e6
	}
	return res
}

func runW4(quick bool) {
	// Widen the scheduler: the container pins GOMAXPROCS to the core count,
	// and at 1 the reader goroutines never overlap the writer at all.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	docs := pick(quick, 10000, 1000)
	readers := 4
	dur := time.Duration(pick(quick, 2000, 400)) * time.Millisecond
	var results []w4Result

	ta := newTable("mode", "readers", "reads/s", "writer ops", "cache hit rate")
	for _, m := range w4Modes {
		r := w4ReadThroughput(m.name, m.opts, docs, readers, dur)
		results = append(results, r)
		hit := "-"
		if r.CacheHits+r.CacheMisses > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*r.HitRate)
		}
		ta.add(r.Mode, r.Readers, fmt.Sprintf("%.0f", r.ReadsPerSec), r.WriterOps, hit)
	}
	fmt.Println("  Phase A: point-read throughput under a sustained writer")
	ta.print()
	if results[0].ReadsPerSec > 0 {
		fmt.Printf("  read throughput ratio rw+cache / serialized = %.2fx (target: >= 3x)\n",
			results[1].ReadsPerSec/results[0].ReadsPerSec)
	}

	puts := pick(quick, 2000, 300)
	tb := newTable("mode", "put p50 µs", "put p99 µs", "avg scan ms")
	for _, m := range w4Modes {
		r := w4ScanInterference(m.name, m.opts, docs, puts)
		results = append(results, r)
		tb.add(r.Mode, fmt.Sprintf("%.1f", r.PutP50us), fmt.Sprintf("%.1f", r.PutP99us),
			fmt.Sprintf("%.2f", r.ScanAvgMs))
	}
	fmt.Println("  Phase B: Put latency while full scans run back-to-back")
	tb.print()
	fmt.Println("  (shape check: serialized put p99 ≈ scan length; snapshot scans keep it µs-scale)")

	base := loadRPBaseline()
	base.W4 = results
	saveRPBaseline(base)
	fmt.Println("  baseline written to " + rpBaselineFile)
}

// --- read-path baseline file (shared by W4, W9, and the drift guard) ---

// rpBaseline is the committed read-path baseline: the W4 latching matrix
// plus the W9 bulk-read measurements. Each experiment rewrites only its
// own section, so regenerating one does not discard the other.
type rpBaseline struct {
	W4 []w4Result `json:"w4"`
	W9 []w9Result `json:"w9"`
}

const rpBaselineFile = "BENCH_readpath.json"

func loadRPBaseline() rpBaseline {
	var base rpBaseline
	raw, err := os.ReadFile(rpBaselineFile)
	if err != nil {
		return base
	}
	if json.Unmarshal(raw, &base) != nil {
		// Legacy layout: a flat W4 array from before W9 existed.
		var flat []w4Result
		if json.Unmarshal(raw, &flat) == nil {
			base.W4 = flat
		}
	}
	return base
}

func saveRPBaseline(base rpBaseline) {
	f, err := os.Create(rpBaselineFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
