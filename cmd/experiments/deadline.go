package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	domino "repro"
	"repro/internal/faultnet"
)

// --- W10: end-to-end deadlines, hedged reads, and wasted work ---
//
// The deadline layer's three claims, measured end to end:
//
// Phase A: with one faultnet-stalled mate in a 3-mate cluster, hedged +
// budgeted reads cut client-observed tail latency by >= 5x against the
// deadline-less baseline (flat OpTimeout, serial failover): the hedge fires
// after a small delay and a healthy mate answers while the stalled mate is
// still sitting on the response.
//
// Phase B: under sustained overload, a caller that abandons at D either
// carries D as a wire budget (the server sheds doomed requests before
// execution and wasted work stays ~0) or it does not (the server executes
// nearly everything for callers long gone).
//
// Phase C: deadline expiry mid-write is ambiguous, so the client runs the
// safe retry protocol (read back by UNID, re-create only if absent); the
// audit below shows zero acknowledged writes lost and zero duplicated
// across stall-induced expiries and failovers.

// w10Result is one measured configuration, serialized to
// BENCH_deadline.json as the regression baseline.
type w10Result struct {
	Phase          string  `json:"phase"`
	Mode           string  `json:"mode,omitempty"`
	Trials         int     `json:"trials,omitempty"`
	P50Ms          float64 `json:"p50_ms,omitempty"`
	P99Ms          float64 `json:"p99_ms,omitempty"`
	SpeedupX       float64 `json:"speedup_x,omitempty"`
	Hedges         uint64  `json:"hedges,omitempty"`
	HedgeWins      uint64  `json:"hedge_wins,omitempty"`
	Clients        int     `json:"clients,omitempty"`
	AbandonMs      float64 `json:"abandon_ms,omitempty"`
	Dispatched     uint64  `json:"dispatched,omitempty"`
	UsefulAcks     int64   `json:"useful_acks"`
	Wasted         int64   `json:"wasted"`
	WasteRatio     float64 `json:"waste_ratio"`
	BusySheds      uint64  `json:"busy_sheds,omitempty"`
	DeadlineSheds  uint64  `json:"deadline_sheds,omitempty"`
	DeadlineAborts uint64  `json:"deadline_aborts,omitempty"`
	Docs           int     `json:"docs,omitempty"`
	Acked          int     `json:"acked,omitempty"`
	Recovered      int     `json:"recovered,omitempty"`
	LostAcked      int     `json:"lost_acked"`
	Duplicated     int     `json:"duplicated"`
}

const w10Path = "apps/w10.nsf"

// w10Cluster is a 3-mate read cluster whose first mate's listener sits
// behind a faultnet: enabling it stalls every conversation with that mate
// (frames accepted, responses never sent) while the other two stay healthy.
type w10Cluster struct {
	base  string
	srvs  []*domino.Server
	addrs []string
	fn    *faultnet.Net
	unids []domino.UNID
}

func newW10Cluster(docs int) *w10Cluster {
	base, err := os.MkdirTemp("", "domino-w10")
	if err != nil {
		log.Fatal(err)
	}
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	replica := domino.NewReplicaID()
	c := &w10Cluster{base: base}
	var dbs []*domino.Database
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("m%d", i)
		srv, err := domino.NewServer(domino.ServerOptions{
			Name: name, DataDir: filepath.Join(base, name), Directory: d,
		})
		if err != nil {
			log.Fatal(err)
		}
		db, err := srv.OpenDB(w10Path, domino.Options{Title: "w10", ReplicaID: replica})
		if err != nil {
			log.Fatal(err)
		}
		db.ACL().Set("ada", domino.Editor)
		c.srvs = append(c.srvs, srv)
		dbs = append(dbs, db)
	}

	// Seed the first mate, then replicate in-process so every mate serves
	// the same UNIDs.
	sess := dbs[0].Session("ada")
	for i := 0; i < docs; i++ {
		n := domino.NewDocument()
		n.SetText("Subject", fmt.Sprintf("w10 doc %d", i))
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
		c.unids = append(c.unids, n.OID.UNID)
	}
	for i := 1; i < 3; i++ {
		peer := fmt.Sprintf("seed-m%d", i)
		if _, err := domino.Replicate(dbs[0], &domino.LocalPeer{DB: dbs[i]}, domino.ReplicationOptions{PeerName: peer}); err != nil {
			log.Fatal(err)
		}
	}

	// Mate 0 listens behind the faultnet (injection off until a trial turns
	// it on); mates 1 and 2 listen plain.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	c.fn = faultnet.New(faultnet.Plan{Seed: 10, StallProb: 1})
	c.fn.Disable()
	c.addrs = append(c.addrs, c.srvs[0].Serve(c.fn.Listener(ln)))
	for i := 1; i < 3; i++ {
		addr, err := c.srvs[i].Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		c.addrs = append(c.addrs, addr)
	}
	return c
}

func (c *w10Cluster) close() {
	for _, s := range c.srvs {
		s.Close()
	}
	os.RemoveAll(c.base)
}

// w10TailOpts is the per-mode client configuration for Phase A. The
// baseline is the deadline-less world: a flat per-op timeout and serial
// failover, so a stalled mate costs a full OpTimeout before the client
// moves on. The hedged mode carries a budget and races a second mate after
// a fixed 12ms hedge delay.
func w10TailOpts(mode string) domino.FailoverOptions {
	opts := domino.FailoverOptions{
		Client: domino.ClientOptions{
			OpTimeout: 400 * time.Millisecond, MaxRetries: 1,
			BackoffBase: 5 * time.Millisecond, DialTimeout: 2 * time.Second,
		},
	}
	if mode == "hedged" {
		opts.Client.OpBudget = 300 * time.Millisecond
		opts.HedgeReads = true
		opts.HedgeDelay = 12 * time.Millisecond
		opts.HedgeRateCap = 1.0
	}
	return opts
}

// w10Tail measures Phase A in one mode: each trial binds a fresh session
// whose current mate is the stalled one, turns the stall on, and times a
// single Get — the moment a user's read lands on a mate that just went
// dark.
func w10Tail(c *w10Cluster, mode string, trials int) w10Result {
	lats := make([]time.Duration, 0, trials)
	var hedges, wins uint64
	for i := 0; i < trials; i++ {
		fc, err := domino.DialFailover(c.addrs, "ada", "pw", w10TailOpts(mode))
		if err != nil {
			log.Fatal(err)
		}
		db, err := fc.OpenDB(w10Path)
		if err != nil {
			log.Fatal(err)
		}
		c.fn.Enable()
		start := time.Now()
		if _, err := db.Get(c.unids[i%len(c.unids)]); err != nil {
			log.Fatalf("W10 %s trial %d: %v", mode, i, err)
		}
		lats = append(lats, time.Since(start))
		c.fn.Disable()
		st := fc.Stats()
		hedges += st.Hedges
		wins += st.HedgeWins
		fc.Close()
	}
	return w10Result{
		Phase: "tail", Mode: mode, Trials: trials,
		P50Ms:     float64(percentile(lats, 0.50).Nanoseconds()) / 1e6,
		P99Ms:     float64(percentile(lats, 0.99).Nanoseconds()) / 1e6,
		Hedges:    hedges,
		HedgeWins: wins,
	}
}

// w10Waste measures Phase B in one mode: `clients` connections hammer an
// overloaded single-slot server whose queue wait dwarfs the caller's
// patience D. "flat-timeout" callers wait out the queue but stop caring at
// D — every completion past D is work the server did for nobody.
// "budgeted" callers carry D on the wire, so admission sheds requests that
// cannot survive the queue before they execute.
func w10Waste(mode string, clients int, abandon, dur time.Duration) w10Result {
	base, err := os.MkdirTemp("", "domino-w10b")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	// One execution slot + SyncWAL pins the service rate to the fsync path;
	// the admit queue (not busy-shedding) is where requests go to die.
	srv, err := domino.NewServer(domino.ServerOptions{
		Name: "w10b", DataDir: base, Directory: d, SyncWAL: true,
		MaxInFlight: 1, AdmitWait: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dbs, err := srv.OpenDB("apps/w10b.nsf", domino.Options{Title: "w10b"})
	if err != nil {
		log.Fatal(err)
	}
	dbs.ACL().Set("ada", domino.Editor)

	// No client-side retries: every outcome is counted once.
	copts := domino.ClientOptions{MaxRetries: -1, DialTimeout: 2 * time.Second}
	if mode == "budgeted" {
		copts.OpBudget = abandon
	} else {
		// Deadline-less: the client waits out the whole queue, but the
		// caller behind it abandoned the result at `abandon`.
		copts.OpTimeout = 2 * time.Second
	}
	rdbs := make([]*domino.RemoteDB, clients)
	for i := range rdbs {
		c, err := domino.DialOptions(addr, "ada", "pw", copts)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		rdb, err := c.OpenDB("apps/w10b.nsf")
		if err != nil {
			log.Fatal(err)
		}
		rdbs[i] = rdb
	}
	h0 := srv.Health()

	var mu sync.Mutex
	var useful, late int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for i, rdb := range rdbs {
		wg.Add(1)
		go func(i int, rdb *domino.RemoteDB) {
			defer wg.Done()
			var myUseful, myLate int64
			body := string(make([]byte, 4<<10))
			for j := 0; time.Now().Before(deadline); j++ {
				n := domino.NewDocument()
				n.SetText("Subject", fmt.Sprintf("w10b %d/%d", i, j))
				n.SetText("Body", body)
				start := time.Now()
				err := rdb.Create(n)
				switch {
				case err == nil && time.Since(start) <= abandon:
					myUseful++
				case err == nil:
					myLate++ // completed for a caller that had left
				case isBusy(err) || isDeadline(err):
					// shed (busy or deadline-refused): never executed
				default:
					log.Fatal(err)
				}
			}
			mu.Lock()
			useful += myUseful
			late += myLate
			mu.Unlock()
		}(i, rdb)
	}
	wg.Wait()

	h1 := srv.Health()
	dispatched := h1.Dispatched - h0.Dispatched
	wasted := int64(dispatched) - useful
	if wasted < 0 {
		wasted = 0
	}
	res := w10Result{
		Phase: "waste", Mode: mode, Clients: clients,
		AbandonMs:      float64(abandon.Nanoseconds()) / 1e6,
		Dispatched:     dispatched,
		UsefulAcks:     useful,
		Wasted:         wasted,
		BusySheds:      h1.Sheds - h0.Sheds,
		DeadlineSheds:  h1.DeadlineSheds - h0.DeadlineSheds,
		DeadlineAborts: h1.DeadlineAborts - h0.DeadlineAborts,
	}
	if dispatched > 0 {
		res.WasteRatio = float64(wasted) / float64(dispatched)
	}
	_ = late
	return res
}

func isDeadline(err error) bool { return errors.Is(err, domino.ErrDeadline) }

// w10WriteSafety runs Phase C: a budgeted failover client creates
// documents against a 2-mate cluster whose primary stalls a fifth of its
// connections mid-conversation, so some creates die by deadline expiry
// after the server may have applied them. The client answers every
// ambiguous outcome with the safe retry protocol: read the UNID back
// (waiting out cluster-push lag), re-create only if genuinely absent. The
// audit then reconciles the replicas in-process and checks every
// acknowledged subject exists exactly once.
func w10WriteSafety(docs int) w10Result {
	base, err := os.MkdirTemp("", "domino-w10c")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	d.AddUser(domino.User{Name: "alpha", Secret: "sa"})
	d.AddUser(domino.User{Name: "beta", Secret: "sb"})
	replica := domino.NewReplicaID()
	mk := func(name, secret string) (*domino.Server, *domino.Database) {
		srv, err := domino.NewServer(domino.ServerOptions{
			Name: name, DataDir: filepath.Join(base, name),
			Directory: d, PeerSecret: secret,
		})
		if err != nil {
			log.Fatal(err)
		}
		db, err := srv.OpenDB("apps/w10c.nsf", domino.Options{Title: "w10c", ReplicaID: replica})
		if err != nil {
			log.Fatal(err)
		}
		for _, who := range []string{"ada", "alpha", "beta"} {
			db.ACL().Set(who, domino.Editor)
		}
		return srv, db
	}
	alpha, dbA := mk("alpha", "sa")
	beta, dbB := mk("beta", "sb")
	// Close alpha first so its cluster pusher stops before beta's listener
	// goes away (the reverse order spams dial-refused push failures).
	defer beta.Close()
	defer alpha.Close()

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fn := faultnet.New(faultnet.Plan{Seed: 20, StallProb: 0.2})
	fn.Disable()
	aAddr := alpha.Serve(fn.Listener(lnA))
	bAddr, err := beta.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Cluster push alpha -> beta: a create the stalled alpha applied but
	// never acknowledged still reaches beta, which is exactly what makes
	// blind re-creates dangerous and the read-back protocol necessary.
	alpha.EnableClustering(map[string]string{"beta": bAddr})

	fc, err := domino.DialFailover([]string{aAddr, bAddr}, "ada", "pw", domino.FailoverOptions{
		Client: domino.ClientOptions{
			OpBudget: 200 * time.Millisecond, OpTimeout: time.Second,
			MaxRetries: 1, BackoffBase: 5 * time.Millisecond, DialTimeout: 2 * time.Second,
		},
		// Short cooldown so the client keeps drifting back to the stalling
		// primary during the run: several expiry -> failover -> recover
		// cycles get exercised, not just the first.
		Cooldown: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("apps/w10c.nsf")
	if err != nil {
		log.Fatal(err)
	}

	fn.Enable()
	type ackedDoc struct {
		unid    domino.UNID
		subject string
	}
	var acked []ackedDoc
	recovered := 0
	for i := 0; i < docs; i++ {
		n := domino.NewDocument()
		subject := fmt.Sprintf("w10c doc %04d", i)
		n.SetText("Subject", subject)
		if err := db.Create(n); err != nil {
			// Ambiguous outcome (deadline expiry or transport death after
			// send): never blind-resend. Read back first — giving the
			// cluster push a moment to surface a create the stalled mate
			// applied — and re-create only when provably absent.
			ok := false
			for attempt := 0; attempt < 10 && !ok; attempt++ {
				if _, gerr := db.Get(n.OID.UNID); gerr == nil {
					ok = true
					break
				}
				if attempt < 3 {
					time.Sleep(25 * time.Millisecond) // push lag window
					continue
				}
				if cerr := db.Create(n); cerr == nil {
					ok = true
				}
			}
			if !ok {
				continue // never acknowledged anywhere — excluded from audit
			}
			recovered++
		}
		acked = append(acked, ackedDoc{n.OID.UNID, subject})
	}
	fn.Disable()

	// Reconcile the replicas in-process (pull + push), then audit against
	// the merged state: an acked subject missing everywhere is a lost
	// write; one appearing twice (including as a replication conflict) is
	// a duplicated retry.
	if _, err := domino.Replicate(dbA, &domino.LocalPeer{DB: dbB}, domino.ReplicationOptions{PeerName: "audit"}); err != nil {
		log.Fatal(err)
	}
	counts := make(map[string]int)
	dbB.ScanAll(func(n *domino.Note) bool {
		if s := n.Text("Subject"); s != "" {
			counts[s]++
		}
		return true
	})
	lost, dup := 0, 0
	for _, a := range acked {
		switch c := counts[a.subject]; {
		case c == 0:
			lost++
		case c > 1:
			dup++
		}
	}
	return w10Result{
		Phase: "write-safety", Docs: docs,
		Acked: len(acked), Recovered: recovered,
		LostAcked: lost, Duplicated: dup,
	}
}

const (
	w10MinSpeedup  = 5.0  // acceptance: hedged p99 >= 5x better
	w10MaxWaste    = 0.10 // acceptance: budgeted waste ratio ~0 (single-core client jitter slack)
	w10DriftRatio  = 3.0  // guard tolerance on the hedged p99 (wall clock)
	w10FloorMs     = 30.0
	w10BaselineFmt = "BENCH_deadline.json"
)

func runW10(quick bool) {
	var results []w10Result

	trials := pick(quick, 12, 6)
	docs := pick(quick, 50, 20)
	cl := newW10Cluster(docs)
	fmt.Println("  Phase A: read tail with one stalled mate — flat-timeout failover vs budget+hedge")
	ta := newTable("mode", "trials", "p50 ms", "p99 ms", "hedges", "wins", "speedup")
	baseline := w10Tail(cl, "baseline", trials)
	hedged := w10Tail(cl, "hedged", trials)
	cl.close()
	if hedged.P99Ms > 0 {
		hedged.SpeedupX = baseline.P99Ms / hedged.P99Ms
	}
	results = append(results, baseline, hedged)
	for _, r := range []w10Result{baseline, hedged} {
		sp := "—"
		if r.SpeedupX > 0 {
			sp = fmt.Sprintf("%.1fx", r.SpeedupX)
		}
		ta.add(r.Mode, r.Trials, fmt.Sprintf("%.1f", r.P50Ms), fmt.Sprintf("%.1f", r.P99Ms),
			fmt.Sprint(r.Hedges), fmt.Sprint(r.HedgeWins), sp)
	}
	ta.print()
	if hedged.SpeedupX < w10MinSpeedup {
		fmt.Printf("  !! hedged p99 only %.1fx better than baseline (target >= %.0fx)\n",
			hedged.SpeedupX, w10MinSpeedup)
	} else {
		fmt.Printf("  hedged reads cut p99 %.1fx (target >= %.0fx)\n", hedged.SpeedupX, w10MinSpeedup)
	}

	clients := 48 // same both modes: more goroutines than this adds 1-CPU client jitter, not queue
	dur := time.Duration(pick(quick, 1500, 500)) * time.Millisecond
	abandon := 8 * time.Millisecond
	fmt.Println("  Phase B: overloaded server, callers abandon at 8ms — wasted completions")
	tb := newTable("mode", "clients", "dispatched", "useful acks", "wasted", "waste ratio", "busy sheds", "deadline sheds")
	for _, mode := range []string{"flat-timeout", "budgeted"} {
		r := w10Waste(mode, clients, abandon, dur)
		results = append(results, r)
		tb.add(r.Mode, r.Clients, fmt.Sprint(r.Dispatched), fmt.Sprint(r.UsefulAcks),
			fmt.Sprint(r.Wasted), fmt.Sprintf("%.2f", r.WasteRatio),
			fmt.Sprint(r.BusySheds), fmt.Sprint(r.DeadlineSheds))
		if mode == "budgeted" && r.WasteRatio > w10MaxWaste {
			fmt.Printf("  !! budgeted waste ratio %.2f (target <= %.2f)\n", r.WasteRatio, w10MaxWaste)
		}
	}
	tb.print()
	fmt.Println("  (shape check: without budgets the server completes the queue for callers long")
	fmt.Println("   gone; with budgets, doomed requests are refused before executing)")

	wdocs := pick(quick, 80, 30)
	fmt.Println("  Phase C: write-safety audit across deadline-expiry retries (stalling primary)")
	ws := w10WriteSafety(wdocs)
	results = append(results, ws)
	tc := newTable("docs", "acked", "recovered", "lost acked", "duplicated")
	tc.add(ws.Docs, ws.Acked, ws.Recovered, ws.LostAcked, ws.Duplicated)
	tc.print()
	if ws.LostAcked != 0 || ws.Duplicated != 0 {
		fmt.Printf("  !! audit failed: %d lost, %d duplicated acked writes\n", ws.LostAcked, ws.Duplicated)
	} else {
		fmt.Println("  (invariant: zero acked writes lost or duplicated — ambiguity answered by read-back, not resend)")
	}

	f, err := os.Create(w10BaselineFmt)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to " + w10BaselineFmt)
}

// guardW10 re-runs a reduced Phase A probe against the committed
// BENCH_deadline.json: the hedged p99 must still beat the deadline-less
// baseline by the acceptance ratio outright, and its absolute value is
// checked with generous wall-clock tolerances. The committed Phase B and C
// rows are re-checked as invariants (waste ratio, audit zeros).
func guardW10(t *table) string {
	f, err := os.Open(w10BaselineFmt)
	if err != nil {
		return "W10 baseline missing; run `make bench-deadline` and commit " + w10BaselineFmt
	}
	var base []w10Result
	err = json.NewDecoder(f).Decode(&base)
	f.Close()
	if err != nil {
		return "W10 baseline unreadable: " + err.Error()
	}
	var want float64
	for _, r := range base {
		switch {
		case r.Phase == "tail" && r.Mode == "hedged":
			want = r.P99Ms
		case r.Phase == "waste" && r.Mode == "budgeted" && r.WasteRatio > w10MaxWaste:
			return fmt.Sprintf("W10 committed budgeted waste ratio %.2f > %.2f", r.WasteRatio, w10MaxWaste)
		case r.Phase == "write-safety" && (r.LostAcked != 0 || r.Duplicated != 0):
			return fmt.Sprintf("W10 committed audit shows %d lost / %d duplicated acked writes", r.LostAcked, r.Duplicated)
		}
	}
	if want == 0 {
		return "W10 hedged tail row missing from baseline; run `make bench-deadline`"
	}
	cl := newW10Cluster(10)
	defer cl.close()
	probe := 3
	baseRun := w10Tail(cl, "baseline", probe)
	hedgeRun := w10Tail(cl, "hedged", probe)
	speedup := 0.0
	if hedgeRun.P99Ms > 0 {
		speedup = baseRun.P99Ms / hedgeRun.P99Ms
	}
	if speedup < w10MinSpeedup {
		return fmt.Sprintf("W10 hedged p99 only %.1fx better than stalled-mate baseline (want >= %.0fx)",
			speedup, w10MinSpeedup)
	}
	verdict := "ok"
	msg := ""
	if hedgeRun.P99Ms > want*w10DriftRatio && hedgeRun.P99Ms > want+w10FloorMs {
		verdict = "REGRESSED"
		msg = fmt.Sprintf("W10 hedged p99 %.1fms vs baseline %.1fms", hedgeRun.P99Ms, want)
	}
	t.add("W10 hedged p99 (stalled mate)", fmt.Sprintf("%.1fms", want),
		fmt.Sprintf("%.1fms", hedgeRun.P99Ms), verdict)
	return msg
}
