package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	domino "repro"
	"repro/internal/repl"
)

// T8 — change-propagation latency: event-driven cluster push vs scheduled
// replication. The claim: clustering delivers saves to the mate in
// milliseconds, while a scheduled replicator's expected latency is half its
// interval — which is why Domino clusters push.

type twoServers struct {
	a, b         *domino.Server
	dbA, dbB     *domino.Database
	aAddr, bAddr string
	cleanup      func()
}

func newTwoServers(cluster bool) *twoServers {
	base, err := os.MkdirTemp("", "domino-t8")
	if err != nil {
		log.Fatal(err)
	}
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	d.AddUser(domino.User{Name: "alpha", Secret: "sa"})
	d.AddUser(domino.User{Name: "beta", Secret: "sb"})
	mk := func(name, secret string) *domino.Server {
		s, err := domino.NewServer(domino.ServerOptions{
			Name: name, DataDir: filepath.Join(base, name),
			Directory: d, PeerSecret: secret,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	ts := &twoServers{a: mk("alpha", "sa"), b: mk("beta", "sb")}
	ts.aAddr, err = ts.a.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ts.bAddr, err = ts.b.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	replica := domino.NewReplicaID()
	ts.dbA, err = ts.a.OpenDB("apps/t8.nsf", domino.Options{Title: "t8", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	ts.dbB, err = ts.b.OpenDB("apps/t8.nsf", domino.Options{Title: "t8", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	ts.dbA.ACL().Set("beta", domino.Editor)
	ts.dbB.ACL().Set("alpha", domino.Editor)
	if cluster {
		ts.a.EnableClustering(map[string]string{"beta": ts.bAddr})
	}
	ts.cleanup = func() {
		ts.a.Close()
		ts.b.Close()
		os.RemoveAll(base)
	}
	return ts
}

// measurePropagation creates docs on A and returns per-doc latencies until
// each is visible on B; deliver is called between creations (for the
// scheduled mode) and may be nil.
func measurePropagation(ts *twoServers, docs int, spacing time.Duration) []time.Duration {
	sess := ts.dbA.Session("ada")
	latencies := make([]time.Duration, 0, docs)
	for i := 0; i < docs; i++ {
		n := domino.NewDocument()
		n.SetText("Subject", fmt.Sprintf("t8 doc %d", i))
		start := time.Now()
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
		deadline := start.Add(10 * time.Second)
		for {
			if _, err := ts.dbB.RawGet(n.OID.UNID); err == nil {
				latencies = append(latencies, time.Since(start))
				break
			}
			if time.Now().After(deadline) {
				latencies = append(latencies, 10*time.Second)
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(spacing)
	}
	return latencies
}

func percentile(ds []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func runT8(quick bool) {
	docs := pick(quick, 12, 5)
	interval := 400 * time.Millisecond

	// Mode 1: cluster push.
	ts := newTwoServers(true)
	pushLat := measurePropagation(ts, docs, 20*time.Millisecond)
	ts.cleanup()

	// Mode 2: scheduled replication at a fixed interval (background loop,
	// like dominod's replicate directive).
	ts = newTwoServers(false)
	stopRepl := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopRepl:
				return
			case <-t.C:
				_, err := ts.a.ReplicateWith("beta", ts.bAddr, "apps/t8.nsf", repl.Options{})
				if err != nil {
					log.Printf("t8 scheduled replicate: %v", err)
				}
			}
		}
	}()
	schedLat := measurePropagation(ts, docs, 50*time.Millisecond)
	close(stopRepl)
	ts.cleanup()

	t := newTable("mode", "docs", "median latency ms", "p95 ms")
	t.add("cluster push", docs, ms(percentile(pushLat, 0.5)), ms(percentile(pushLat, 0.95)))
	t.add(fmt.Sprintf("scheduled (every %s)", interval), docs,
		ms(percentile(schedLat, 0.5)), ms(percentile(schedLat, 0.95)))
	t.print()
	fmt.Println("  (shape check: push delivers in milliseconds; scheduled latency centers")
	fmt.Println("   on ~half the replication interval)")
}
