package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	domino "repro"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

// --- W9: paginated bulk read path ---
//
// The bulk-read claim, measured end to end over the wire:
//
// Phase A — a view open over a 5 ms-RTT link (faultnet fixed latency on
// both directions) pays one round trip per page instead of one per
// document. Against the per-note baseline (Get each document the view
// lists, the only portable read shape the old protocol offered for
// projections), the paginated open must be at least 5x faster.
//
// Phase B — a 200k-row view whose one-shot rendering would exceed the
// 64 MiB frame limit streams fully: a client-side frame meter parses the
// raw read stream and asserts every response frame stays under MaxFrame
// (and far under it — pages respect the server's byte budget), while the
// summed row payload documents what the one-shot protocol would have had
// to carry in a single frame.

// w9Result is one measured configuration, serialized into the w9 section
// of BENCH_readpath.json as the regression baseline.
type w9Result struct {
	Phase      string  `json:"phase"`
	Docs       int     `json:"docs"`
	RTTMs      float64 `json:"rtt_ms,omitempty"`
	PageRows   int     `json:"page_rows,omitempty"`
	Pages      int     `json:"pages,omitempty"`
	RoundTrips int64   `json:"round_trips,omitempty"`
	ViewOpenMs float64 `json:"view_open_ms,omitempty"`
	PerNoteMs  float64 `json:"per_note_ms,omitempty"`
	SpeedupX   float64 `json:"speedup_x,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	MaxFrameB  int     `json:"max_frame_bytes,omitempty"`
	TotalB     int64   `json:"total_frame_bytes,omitempty"`
}

const w9Path = "apps/w9.nsf"

// w9Server boots one server with the given bulk-read page budget, seeds
// `docs` documents server-side (each with a Subject of at least `subject`
// bytes), and defines a sorted Subject view. The listener is wrapped by
// the returned faultnet (injection disabled; enable before measuring).
func w9Server(docs, subject, pageRows int, plan faultnet.Plan) (*domino.Server, string, *faultnet.Net, func()) {
	base, err := os.MkdirTemp("", "domino-w9")
	if err != nil {
		log.Fatal(err)
	}
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	srv, err := domino.NewServer(domino.ServerOptions{
		Name: "w9", DataDir: filepath.Join(base, "w9"),
		Directory: d, MaxPageRows: pageRows,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := srv.OpenDB(w9Path, domino.Options{Title: "w9", ReplicaID: domino.NewReplicaID()})
	if err != nil {
		log.Fatal(err)
	}
	db.ACL().Set("ada", domino.Editor)

	// Seed before defining the view: one rebuild beats n incremental updates.
	pad := string(make([]byte, subject))
	sess := db.Session("ada")
	for i := 0; i < docs; i++ {
		n := domino.NewDocument()
		n.SetText("Subject", fmt.Sprintf("doc %08d %s", i, pad))
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
	}
	def, err := domino.NewView("bysubject", "SELECT @All",
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AddView(nil, def); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fn := faultnet.New(plan)
	fn.Disable()
	addr := srv.Serve(fn.Listener(ln))
	cleanup := func() {
		srv.Close()
		os.RemoveAll(base)
	}
	return srv, addr, fn, cleanup
}

// w9ViewOpen measures Phase A at one configuration: client-observed time
// to render the whole view over a link with the given one-way latency,
// paginated, against the per-note Get baseline over the same link.
func w9ViewOpen(docs, pageRows int, oneWay time.Duration) w9Result {
	_, addr, fn, cleanup := w9Server(docs, 0, pageRows, faultnet.Plan{Latency: oneWay})
	defer cleanup()

	// Dial and bind the handle with latency off: both modes share session
	// setup, and the comparison is read traffic, not handshakes.
	c, err := domino.DialOptions(addr, "ada", "pw", domino.ClientOptions{Dialer: fn.Dial})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB(w9Path)
	if err != nil {
		log.Fatal(err)
	}

	fn.Enable()
	before := fn.Stats().Latencies
	start := time.Now()
	rows, err := rdb.ViewRows("bysubject")
	if err != nil {
		log.Fatal(err)
	}
	viewOpen := time.Since(start)
	// Request and response bursts each pay the one-way latency once, so
	// round trips = latency events / 2.
	trips := (fn.Stats().Latencies - before) / 2
	if len(rows) != docs {
		log.Fatalf("W9: view rendered %d rows, want %d", len(rows), docs)
	}

	start = time.Now()
	for _, r := range rows {
		if _, err := rdb.Get(r.UNID); err != nil {
			log.Fatal(err)
		}
	}
	perNote := time.Since(start)
	fn.Disable()

	res := w9Result{
		Phase: "view-open", Docs: docs,
		RTTMs:      2 * float64(oneWay.Microseconds()) / 1e3,
		PageRows:   pageRows,
		Pages:      (docs + pageRows - 1) / pageRows,
		RoundTrips: trips,
		ViewOpenMs: float64(viewOpen.Microseconds()) / 1e3,
		PerNoteMs:  float64(perNote.Microseconds()) / 1e3,
	}
	if viewOpen > 0 {
		res.SpeedupX = float64(perNote) / float64(viewOpen)
	}
	return res
}

// frameMeter wraps a client connection and runs the frame protocol's
// length-prefix parser over the raw read stream — the real bytes on the
// wire, not what the decoder reports — recording every response frame's
// size.
type frameMeter struct {
	net.Conn
	stats *frameStats

	need int     // payload bytes left in the current frame
	hdr  [4]byte // partially accumulated length prefix
	hlen int
}

type frameStats struct {
	mu     sync.Mutex
	frames int64
	total  int64
	max    int
}

func (m *frameMeter) Read(b []byte) (int, error) {
	n, err := m.Conn.Read(b)
	if n > 0 {
		m.feed(b[:n])
	}
	return n, err
}

// feed advances the parser over one chunk of the read stream. Reads are
// serialized by the client (one response at a time), so no lock is needed
// on the parser state itself.
func (m *frameMeter) feed(b []byte) {
	for len(b) > 0 {
		if m.need > 0 {
			k := m.need
			if k > len(b) {
				k = len(b)
			}
			m.need -= k
			b = b[k:]
			continue
		}
		k := copy(m.hdr[m.hlen:], b)
		m.hlen += k
		b = b[k:]
		if m.hlen == 4 {
			n := int(binary.LittleEndian.Uint32(m.hdr[:]))
			m.hlen = 0
			m.need = n
			m.stats.mu.Lock()
			m.stats.frames++
			m.stats.total += int64(n)
			if n > m.stats.max {
				m.stats.max = n
			}
			m.stats.mu.Unlock()
		}
	}
}

// w9FrameBound measures Phase B: a view big enough that its one-shot
// rendering would not fit in a single MaxFrame frame streams fully in
// paginated form, every frame verified against the limit by the meter.
func w9FrameBound(docs int) w9Result {
	// ~400-byte subjects: at 200k rows the summed rendering tops 64 MiB,
	// which the one-shot protocol could not frame at all.
	_, addr, _, cleanup := w9Server(docs, 400, 0, faultnet.Plan{})
	defer cleanup()

	stats := &frameStats{}
	dialer := func(network, addr string) (net.Conn, error) {
		conn, err := net.DialTimeout(network, addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		return &frameMeter{Conn: conn, stats: stats}, nil
	}
	c, err := domino.DialOptions(addr, "ada", "pw", domino.ClientOptions{Dialer: dialer})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB(w9Path)
	if err != nil {
		log.Fatal(err)
	}

	pages, rows := 0, 0
	for start := 0; ; {
		p, err := rdb.ViewPage("bysubject", start, 0)
		if err != nil {
			log.Fatal(err)
		}
		pages++
		rows += len(p.Rows)
		if !p.More || p.Next <= start {
			break
		}
		start = p.Next
	}
	if rows != docs {
		log.Fatalf("W9: paginated stream delivered %d rows, want %d", rows, docs)
	}

	stats.mu.Lock()
	defer stats.mu.Unlock()
	if stats.max >= wire.MaxFrame {
		log.Fatalf("W9: response frame of %d bytes at or over the %d limit", stats.max, wire.MaxFrame)
	}
	return w9Result{
		Phase: "frame-bound", Docs: docs,
		Pages: pages, Rows: rows,
		MaxFrameB: stats.max, TotalB: stats.total,
	}
}

// Guard-probe configuration: fixed sizes in quick and full runs, so the
// drift guard compares like against like.
const (
	w9ProbeDocs  = 200
	w9ProbePage  = 64
	w9ProbeDelay = 2500 * time.Microsecond // 5 ms RTT
)

func w9Probe() w9Result {
	r := w9ViewOpen(w9ProbeDocs, w9ProbePage, w9ProbeDelay)
	r.Phase = "view-open-probe"
	return r
}

// W9 drift tolerances: view-open time over the emulated link is dominated
// by round trips x RTT, so the guard hunts a broken pager (extra round
// trips, pages collapsing to single rows), not scheduler jitter.
const (
	w9MinSpeedup = 5.0
	w9DriftRatio = 3.0
	w9FloorMs    = 50.0
)

// guardW9 re-runs the fixed-size Phase A probe: the paginated open must
// beat the per-note baseline by the acceptance ratio outright, and its
// absolute time is checked against the committed BENCH_readpath.json.
func guardW9(t *table) string {
	var want float64
	for _, r := range loadRPBaseline().W9 {
		if r.Phase == "view-open-probe" {
			want = r.ViewOpenMs
		}
	}
	if want == 0 {
		return "W9 probe baseline missing; run `make bench-bulkread` and commit " + rpBaselineFile
	}
	var got, speedup float64
	for trial := 0; trial < driftTrials; trial++ {
		r := w9Probe()
		if trial == 0 || r.ViewOpenMs < got {
			got = r.ViewOpenMs
		}
		if r.SpeedupX > speedup {
			speedup = r.SpeedupX
		}
	}
	if speedup < w9MinSpeedup {
		return fmt.Sprintf("W9 paginated view open only %.1fx faster than per-note (want >= %.0fx)",
			speedup, w9MinSpeedup)
	}
	verdict := "ok"
	msg := ""
	if got > want*w9DriftRatio && got > want+w9FloorMs {
		verdict = "REGRESSED"
		msg = fmt.Sprintf("W9 view open %.1fms vs baseline %.1fms", got, want)
	}
	t.add("W9 view open (5ms RTT)", fmt.Sprintf("%.1fms", want), fmt.Sprintf("%.1fms", got), verdict)
	return msg
}

func runW9(quick bool) {
	var results []w9Result

	docs := pick(quick, 2000, 400)
	pageRows := 256
	fmt.Println("  Phase A: view open over a 5ms-RTT link, paginated vs per-note Get")
	ta := newTable("docs", "pages", "round trips", "view open ms", "per-note ms", "speedup")
	a := w9ViewOpen(docs, pageRows, w9ProbeDelay)
	results = append(results, a)
	probe := w9Probe()
	results = append(results, probe)
	for _, r := range []w9Result{a, probe} {
		ta.add(r.Docs, r.Pages, r.RoundTrips, fmt.Sprintf("%.1f", r.ViewOpenMs),
			fmt.Sprintf("%.1f", r.PerNoteMs), fmt.Sprintf("%.1fx", r.SpeedupX))
	}
	ta.print()
	fmt.Printf("  speedup target: >= %.0fx\n", w9MinSpeedup)

	big := pick(quick, 200000, 20000)
	fmt.Println("  Phase B: frame-bound streaming of a view too big for one frame")
	b := w9FrameBound(big)
	results = append(results, b)
	tb := newTable("rows", "pages", "max frame KiB", "total MiB", "one-shot vs limit")
	oneShot := "fits"
	if b.TotalB > wire.MaxFrame {
		oneShot = fmt.Sprintf("%.0f%% of limit — unservable one-shot", 100*float64(b.TotalB)/float64(wire.MaxFrame))
	}
	tb.add(b.Rows, b.Pages, fmt.Sprintf("%.0f", float64(b.MaxFrameB)/1024),
		fmt.Sprintf("%.1f", float64(b.TotalB)/(1<<20)), oneShot)
	tb.print()
	fmt.Printf("  every response frame under MaxFrame (largest %.1f%% of limit)\n",
		100*float64(b.MaxFrameB)/float64(wire.MaxFrame))

	base := loadRPBaseline()
	base.W9 = results
	saveRPBaseline(base)
	fmt.Println("  baseline written to " + rpBaselineFile)
}
