package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	domino "repro"
)

// --- W5: availability under node loss and overload ---
//
// The availability layer's two claims, measured end to end:
//
// Phase A: when a cluster mate dies mid-session, a failover client rebinds
// to the survivor within one op's retry window and no acknowledged write is
// lost — every create the client saw succeed is on the survivor after the
// dead mate's file is caught up.
//
// Phase B: under 2x overload, admission control sheds the excess with busy
// responses instead of queueing it, so the latency of *accepted* requests
// stays bounded where the unbounded server's p99 grows with the backlog —
// and once the load stops, the goroutine count returns to its baseline
// (shed work never started, so there is nothing to leak).

// w5Result is one measured configuration, serialized to
// BENCH_availability.json as the regression baseline.
type w5Result struct {
	Phase            string  `json:"phase"`
	Mode             string  `json:"mode,omitempty"`
	Docs             int     `json:"docs,omitempty"`
	Acked            int     `json:"acked,omitempty"`
	LostAcked        int     `json:"lost_acked"`
	FailoverWindowMs float64 `json:"failover_window_ms,omitempty"`
	Failovers        uint64  `json:"failovers,omitempty"`
	Clients          int     `json:"clients,omitempty"`
	MaxInFlight      int     `json:"max_in_flight,omitempty"`
	Accepted         int64   `json:"accepted,omitempty"`
	Sheds            uint64  `json:"sheds,omitempty"`
	GoodputPerSec    float64 `json:"goodput_per_sec,omitempty"`
	AcceptedP50Ms    float64 `json:"accepted_p50_ms,omitempty"`
	AcceptedP99Ms    float64 `json:"accepted_p99_ms,omitempty"`
	GoroutinesBase   int     `json:"goroutines_base,omitempty"`
	GoroutinesAfter  int     `json:"goroutines_after,omitempty"`
}

// w5Failover runs Phase A: a two-mate cluster, a failover client creating
// documents, the primary killed halfway through.
func w5Failover(docs int) w5Result {
	base, err := os.MkdirTemp("", "domino-w5")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	d.AddUser(domino.User{Name: "alpha", Secret: "sa"})
	d.AddUser(domino.User{Name: "beta", Secret: "sb"})
	mk := func(name, secret string) *domino.Server {
		s, err := domino.NewServer(domino.ServerOptions{
			Name: name, DataDir: filepath.Join(base, name),
			Directory: d, PeerSecret: secret,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	alpha, beta := mk("alpha", "sa"), mk("beta", "sb")
	defer beta.Close()
	aAddr, err := alpha.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	bAddr, err := beta.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	replica := domino.NewReplicaID()
	dbA, err := alpha.OpenDB("apps/w5.nsf", domino.Options{Title: "w5", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	dbB, err := beta.OpenDB("apps/w5.nsf", domino.Options{Title: "w5", ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	for _, who := range []string{"ada", "alpha", "beta"} {
		dbA.ACL().Set(who, domino.Editor)
		dbB.ACL().Set(who, domino.Editor)
	}
	alpha.EnableClustering(map[string]string{"beta": bAddr})

	fc, err := domino.DialFailover([]string{aAddr, bAddr}, "ada", "pw", domino.FailoverOptions{
		Client: domino.ClientOptions{BackoffBase: 5 * time.Millisecond, DialTimeout: 2 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("apps/w5.nsf")
	if err != nil {
		log.Fatal(err)
	}

	killAt := docs / 2
	var acked []domino.UNID
	var window time.Duration
	for i := 0; i < docs; i++ {
		if i == killAt {
			alpha.Close()
		}
		n := domino.NewDocument()
		n.SetText("Subject", fmt.Sprintf("w5 doc %d", i))
		start := time.Now()
		if err := db.Create(n); err != nil {
			// Ambiguous create: the ack was lost with the mate. Creates are
			// not idempotent, so the client surfaces the error; the recovery
			// protocol is read-back on the survivor, then re-issue.
			if _, gerr := db.Get(n.OID.UNID); gerr != nil {
				if err2 := db.Create(n); err2 != nil {
					continue // never acknowledged anywhere — not counted
				}
			}
		}
		if i == killAt {
			window = time.Since(start)
		}
		acked = append(acked, n.OID.UNID)
	}

	// Catch up the dead mate's file into the survivor, then check every
	// acknowledged write is there. Writes acked by alpha before the kill
	// were cluster-pushed, but the push is asynchronous — the catch-up
	// replication from the dead file is what a restarted mate (or an admin
	// with its disk) would run.
	reopened, err := domino.Open(filepath.Join(base, "alpha", "apps", "w5.nsf"), domino.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	if _, err := domino.Replicate(reopened, &domino.LocalPeer{DB: dbB}, domino.ReplicationOptions{PeerName: "catchup"}); err != nil {
		log.Fatal(err)
	}
	lost := 0
	for _, u := range acked {
		if _, err := dbB.RawGet(u); err != nil {
			lost++
		}
	}
	return w5Result{
		Phase:            "failover",
		Docs:             docs,
		Acked:            len(acked),
		LostAcked:        lost,
		FailoverWindowMs: float64(window.Nanoseconds()) / 1e6,
		Failovers:        fc.Stats().Failovers,
	}
}

// w5Overload runs Phase B in one admission mode: `clients` connections all
// issuing creates as fast as they can against a server whose in-flight
// pool (if any) is a fraction of that.
func w5Overload(mode string, maxInFlight, clients int, dur time.Duration) w5Result {
	base, err := os.MkdirTemp("", "domino-w5b")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	// SyncWAL pins the service rate to the fsync path: writes serialize on
	// the log, so offered load from `clients` connections is a genuine
	// multiple of capacity no matter how many cores the host has.
	srv, err := domino.NewServer(domino.ServerOptions{
		Name: "w5b", DataDir: base, Directory: d, SyncWAL: true,
		MaxInFlight: maxInFlight, AdmitWait: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dbs, err := srv.OpenDB("apps/w5b.nsf", domino.Options{Title: "w5b"})
	if err != nil {
		log.Fatal(err)
	}
	dbs.ACL().Set("ada", domino.Editor)

	// No client-side retries: a shed must surface (and be counted), not be
	// silently absorbed by backoff.
	copts := domino.ClientOptions{MaxRetries: -1, DialTimeout: 2 * time.Second}
	conns := make([]*domino.Client, clients)
	for i := range conns {
		c, err := domino.DialOptions(addr, "ada", "pw", copts)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	goroBase := runtime.NumGoroutine()

	// Bind every handle before any worker starts: opens go through the same
	// admission gate as everything else, so an open racing the overload
	// would itself be shed.
	rdbs := make([]*domino.RemoteDB, clients)
	for i, c := range conns {
		rdb, err := c.OpenDB("apps/w5b.nsf")
		if err != nil {
			log.Fatal(err)
		}
		rdbs[i] = rdb
	}

	var mu sync.Mutex
	var lats []time.Duration
	var shed uint64
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	for i, rdb := range rdbs {
		wg.Add(1)
		go func(i int, rdb *domino.RemoteDB) {
			defer wg.Done()
			var mine []time.Duration
			var myShed uint64
			body := string(make([]byte, 4096))
			for j := 0; time.Now().Before(deadline); j++ {
				n := domino.NewDocument()
				n.SetText("Subject", fmt.Sprintf("w5b %d/%d", i, j))
				n.SetText("Body", body)
				start := time.Now()
				err := rdb.Create(n)
				switch {
				case err == nil:
					mine = append(mine, time.Since(start))
				case isBusy(err):
					myShed++
				default:
					log.Fatal(err)
				}
			}
			mu.Lock()
			lats = append(lats, mine...)
			shed += myShed
			mu.Unlock()
		}(i, rdb)
	}
	wg.Wait()

	res := w5Result{
		Phase:          "overload",
		Mode:           mode,
		Clients:        clients,
		MaxInFlight:    maxInFlight,
		Accepted:       int64(len(lats)),
		Sheds:          shed,
		GoodputPerSec:  float64(len(lats)) / dur.Seconds(),
		GoroutinesBase: goroBase,
	}
	if len(lats) > 0 {
		res.AcceptedP50Ms = float64(percentile(lats, 0.50).Nanoseconds()) / 1e6
		res.AcceptedP99Ms = float64(percentile(lats, 0.99).Nanoseconds()) / 1e6
	}
	// Shed work never started, so nothing lingers: after the load stops the
	// goroutine count settles back to (at most) its pre-load level.
	for i := 0; i < 100; i++ {
		if res.GoroutinesAfter = runtime.NumGoroutine(); res.GoroutinesAfter <= goroBase {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return res
}

func isBusy(err error) bool {
	var be *domino.BusyError
	return errors.As(err, &be)
}

func runW5(quick bool) {
	// Widen the scheduler so the overload clients genuinely overlap.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	var results []w5Result

	docs := pick(quick, 60, 20)
	fa := w5Failover(docs)
	results = append(results, fa)
	ta := newTable("docs", "acked", "lost acked", "failover window ms", "failovers")
	ta.add(fa.Docs, fa.Acked, fa.LostAcked, fmt.Sprintf("%.1f", fa.FailoverWindowMs), fmt.Sprint(fa.Failovers))
	fmt.Println("  Phase A: kill a cluster mate mid-session (failover client)")
	ta.print()
	if fa.LostAcked != 0 {
		fmt.Printf("  !! %d acknowledged writes lost — availability invariant violated\n", fa.LostAcked)
	} else {
		fmt.Println("  (invariant: zero acknowledged writes lost across the node kill)")
	}

	clients := pick(quick, 32, 8)
	maxIF := pick(quick, 4, 2)
	dur := time.Duration(pick(quick, 2000, 500)) * time.Millisecond
	tb := newTable("mode", "clients", "pool", "accepted", "sheds", "goodput/s", "p50 ms", "p99 ms")
	for _, m := range []struct {
		name string
		mif  int
	}{{"admission", maxIF}, {"unbounded", -1}} {
		r := w5Overload(m.name, m.mif, clients, dur)
		results = append(results, r)
		pool := fmt.Sprint(r.MaxInFlight)
		if r.MaxInFlight < 0 {
			pool = "∞"
		}
		tb.add(r.Mode, r.Clients, pool, fmt.Sprint(r.Accepted), fmt.Sprint(r.Sheds),
			fmt.Sprintf("%.0f", r.GoodputPerSec),
			fmt.Sprintf("%.2f", r.AcceptedP50Ms), fmt.Sprintf("%.2f", r.AcceptedP99Ms))
	}
	fmt.Println("  Phase B: 2x+ offered overload, admission control vs unbounded")
	tb.print()
	fmt.Println("  (shape check: admission sheds the excess and keeps accepted p99 near the")
	fmt.Println("   pool's service time; unbounded queues everything and p99 grows with it)")

	f, err := os.Create("BENCH_availability.json")
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to BENCH_availability.json")
}
