// Command experiments regenerates every table and figure of the experiment
// suite defined in DESIGN.md §3 and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp F1    # run one experiment
//	experiments -quick     # smaller sizes for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// experiment is one table/figure generator.
type experiment struct {
	id    string
	title string
	run   func(q bool)
}

var experiments = []experiment{
	{"T1", "Note CRUD throughput vs document size", runT1},
	{"T2", "Incremental view update vs full rebuild", runT2},
	{"T3", "Deletion stub cutoff vs resurrection anomaly", runT3},
	{"T4", "Crash recovery time vs operations since checkpoint", runT4},
	{"T5", "Reader-field enforcement overhead on view reads", runT5},
	{"T6", "Mail routing throughput (local and cross-server)", runT6},
	{"T7", "Formula evaluation cost by complexity", runT7},
	{"T8", "Change propagation: cluster push vs scheduled replication", runT8},
	{"W1", "Write-path latency vs open change consumers (changefeed)", runW1},
	{"W2", "Incremental view refresh vs rebuild under concurrent writers", runW2},
	{"W3", "Online backup: incremental vs full cost, hot-backup interference, restore/PITR", runW3},
	{"W4", "Read path under concurrent writes: RW latch + snapshot scans + note cache", runW4},
	{"W5", "Availability: failover window / zero lost acked writes, admission control under overload", runW5},
	{"W6", "Partitioned namespace: live moves and dead-mate re-homing, zero lost acked writes", runW6},
	{"W7", "Group-commit write scaling: writers x SyncWAL x group commit", runW7},
	{"W8", "Epidemic mesh convergence under churn: ring + hub-spoke, partition, killed mate", runW8},
	{"W9", "Paginated bulk reads: view open over 5ms RTT vs per-note, frame-bound 200k-row stream", runW9},
	{"W10", "Deadline budgets + hedged reads: stalled-mate tail, wasted work, write-safety audit", runW10},
	{"GUARD", "Bench drift guard (W1/W7 write path + W6 re-home + W8 mesh + W9 bulk read + W10 deadline vs committed baselines)", runGuard},
	{"F1", "Incremental replication vs full copy across deltas", runF1},
	{"F2", "Conflict outcomes vs concurrent-edit overlap", runF2},
	{"F3", "Full-text query latency: index vs scan", runF3},
	{"F4", "Replication topology convergence: hub-spoke vs ring", runF4},
	{"F5", "B+tree point lookups vs scan baseline", runF5},
}

func main() {
	exp := flag.String("exp", "all", "experiment id to run (T1..T7, F1..F5, or all)")
	quick := flag.Bool("quick", false, "run with reduced sizes")
	flag.Parse()

	want := strings.ToUpper(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "ALL" && e.id != want {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		e.run(*quick)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// pick returns q when quick, full otherwise.
func pick(quick bool, full, q int) int {
	if quick {
		return q
	}
	return full
}
