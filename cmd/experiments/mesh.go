package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	domino "repro"
	"repro/internal/faultnet"
	"repro/internal/mesh"
)

// --- W8: epidemic mesh convergence under churn ---
//
// The replication-topology claim, measured end to end over the wire: 8
// servers each holding a replica of one database, connected by a mesh of
// hot links in a ring and in a hub-and-spoke, converge to identical
// (UNID, Seq, SeqTime) fingerprints — while the network drops and severs
// connections, one node sits behind a near-total inbound partition, and
// another is killed mid-churn and restarted on a new address. The audit
// also requires zero spurious conflicts: distinct documents gossiped over
// redundant paths must never be misread as concurrent edits.
//
// A selective phase runs the selection-stub semantics over a live link: a
// document edited out of the link's selection formula must be observed as
// a selection stub at the destination, with the fingerprints still equal.

const w8Path = "apps/disc.nsf"

// w8Result is one measured topology run, serialized to BENCH_mesh.json as
// the regression baseline.
type w8Result struct {
	Topology          string  `json:"topology"`
	Servers           int     `json:"servers"`
	Links             int     `json:"links"`
	Docs              int     `json:"docs"`
	Converged         bool    `json:"converged"`
	ConvergeMs        float64 `json:"converge_ms"`
	SpuriousConflicts int     `json:"spurious_conflicts"`
	SelStubs          int     `json:"sel_stubs,omitempty"`
	Rounds            uint64  `json:"rounds"`
	LinkFailures      uint64  `json:"link_failures"`
	NotesIn           uint64  `json:"notes_in"`
	NotesOut          uint64  `json:"notes_out"`
	BytesIn           uint64  `json:"bytes_in"`
	BytesOut          uint64  `json:"bytes_out"`
	FaultDrops        int64   `json:"fault_drops,omitempty"`
	FaultSevers       int64   `json:"fault_severs,omitempty"`
	KilledMate        string  `json:"killed_mate,omitempty"`
}

// w8Cluster is a mesh deployment: every server behind its own faultnet
// listener, all sharing one directory and one replica of w8Path.
type w8Cluster struct {
	base    string
	d       *domino.Directory
	names   []string
	replica domino.ReplicaID
	srv     map[string]*domino.Server
	addr    map[string]string
	nets    map[string]*faultnet.Net
	mesh    map[string]*domino.Mesh
	topo    []domino.TopoLink
	meshOpt domino.MeshOptions
}

func newW8Cluster(names []string, planFor func(name string) faultnet.Plan) *w8Cluster {
	base, err := os.MkdirTemp("", "domino-w8")
	if err != nil {
		log.Fatal(err)
	}
	c := &w8Cluster{
		base: base, d: domino.NewDirectory(), names: names,
		replica: domino.NewReplicaID(),
		srv:     map[string]*domino.Server{}, addr: map[string]string{},
		nets: map[string]*faultnet.Net{}, mesh: map[string]*domino.Mesh{},
		meshOpt: domino.MeshOptions{
			Interval: 50 * time.Millisecond,
			Debounce: 2 * time.Millisecond,
			Cooldown: 250 * time.Millisecond,
		},
	}
	c.d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	for _, name := range names {
		c.d.AddUser(domino.User{Name: name, Secret: name + "-secret"})
	}
	for _, name := range names {
		c.boot(name, planFor(name))
	}
	c.setPeers()
	return c
}

// boot creates (or re-creates, after a kill) one server: open the shared
// replica, serve behind a fresh faultnet listener, record the address.
func (c *w8Cluster) boot(name string, plan faultnet.Plan) {
	s, err := domino.NewServer(domino.ServerOptions{
		Name: name, DataDir: filepath.Join(c.base, name),
		Directory: c.d, PeerSecret: name + "-secret",
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := s.OpenDB(w8Path, domino.Options{Title: "disc", ReplicaID: c.replica})
	if err != nil {
		log.Fatal(err)
	}
	db.ACL().Set("ada", domino.Editor)
	for _, other := range c.names {
		db.ACL().Set(other, domino.Editor)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fn := faultnet.New(plan)
	fn.Disable()
	c.srv[name] = s
	c.nets[name] = fn
	c.addr[name] = s.Serve(fn.Listener(ln))
}

// setPeers refreshes every live server's peer address map — needed at
// startup and again after a restart lands a mate on a new port.
func (c *w8Cluster) setPeers() {
	for name, s := range c.srv {
		peers := map[string]string{}
		for _, other := range c.names {
			if other != name {
				peers[other] = c.addr[other]
			}
		}
		s.SetPeers(peers)
	}
}

// applyTopology starts each server's mesh and adds the links it runs.
func (c *w8Cluster) applyTopology(topo []domino.TopoLink) {
	c.topo = topo
	for _, name := range c.names {
		c.startMesh(name)
	}
}

func (c *w8Cluster) startMesh(name string) {
	m, err := c.srv[name].EnableMesh(c.meshOpt)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range domino.MeshLinksFor(c.topo, name) {
		if err := m.Add(l); err != nil {
			log.Fatal(err)
		}
	}
	c.mesh[name] = m
}

// kill closes one server; restart boots it again from the same data
// directory (new port) and rejoins it to the mesh.
func (c *w8Cluster) kill(name string) {
	if err := c.srv[name].Close(); err != nil {
		log.Fatal(err)
	}
	delete(c.srv, name)
	delete(c.mesh, name)
}

func (c *w8Cluster) restart(name string, plan faultnet.Plan) {
	c.boot(name, plan)
	c.setPeers()
	c.startMesh(name)
}

func (c *w8Cluster) churn(on bool) {
	for _, fn := range c.nets {
		if on {
			fn.Enable()
		} else {
			fn.Disable()
		}
	}
}

func (c *w8Cluster) write(name string, n int) {
	db, ok := c.srv[name].DB(w8Path)
	if !ok {
		log.Fatalf("w8: %s lost %s", name, w8Path)
	}
	sess := db.Session("ada")
	for i := 0; i < n; i++ {
		doc := domino.NewDocument()
		doc.SetText("Subject", fmt.Sprintf("%s doc %d", name, i))
		doc.SetNumber("Priority", float64(i%5))
		if err := sess.Create(doc); err != nil {
			log.Fatal(err)
		}
	}
}

func (c *w8Cluster) databases() map[string]*domino.Database {
	out := map[string]*domino.Database{}
	for name, s := range c.srv {
		if db, ok := s.DB(w8Path); ok {
			out[name] = db
		}
	}
	return out
}

// waitConverged polls the convergence audit; it returns the elapsed time
// and whether the replicas converged before the deadline.
func (c *w8Cluster) waitConverged(timeout time.Duration) (time.Duration, mesh.Audit) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		audit, err := mesh.AuditConvergence(c.databases())
		if err != nil {
			log.Fatal(err)
		}
		if audit.Converged || time.Now().After(deadline) {
			return time.Since(start), audit
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *w8Cluster) close() {
	for _, s := range c.srv {
		s.Close()
	}
	os.RemoveAll(c.base)
}

// w8Churn runs one topology through the churn schedule: writes under
// drops/severs with one node partitioned, a mate killed mid-churn and
// restarted, then a clean-network convergence measurement.
func w8Churn(topoName string, servers, docsPer int, quick bool) w8Result {
	names := make([]string, servers)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}
	// Base churn: random connect drops, mid-stream severs, small delays.
	// names[1] additionally sits behind a near-total inbound partition.
	base := faultnet.Plan{Seed: 11, DropProb: 0.05, SeverProb: 0.01,
		DelayProb: 0.05, MaxDelay: 2 * time.Millisecond}
	partitioned := base
	partitioned.DropProb = 0.85
	planFor := func(name string) faultnet.Plan {
		if name == names[1] {
			return partitioned
		}
		return base
	}
	c := newW8Cluster(names, planFor)
	defer c.close()

	template := domino.MeshLink{Glob: "apps/*.nsf", Class: mesh.Hot, Interval: 50 * time.Millisecond}
	var topo []domino.TopoLink
	switch topoName {
	case "ring":
		topo = mesh.Ring(names, template)
	case "hub-spoke":
		topo = mesh.HubSpoke(names[0], names[1:], template)
	default:
		log.Fatalf("w8: unknown topology %q", topoName)
	}
	c.applyTopology(topo)
	c.churn(true)

	// First wave of writes on every server, under faults.
	for _, name := range names {
		c.write(name, docsPer/2)
	}
	settle := 300 * time.Millisecond
	if quick {
		settle = 150 * time.Millisecond
	}
	time.Sleep(settle)

	// Kill a mate mid-churn (never the partitioned node — its outage is the
	// partition's job; never the hub, which would disconnect a spoke mesh).
	victim := names[2]
	c.kill(victim)
	for _, name := range names {
		if name != victim {
			c.write(name, docsPer-docsPer/2)
		}
	}
	time.Sleep(settle)
	c.restart(victim, base)
	c.write(victim, docsPer-docsPer/2)

	// Heal the network and measure time to convergence.
	c.churn(false)
	elapsed, audit := c.waitConverged(90 * time.Second)

	res := w8Result{
		Topology: topoName, Servers: servers, Links: len(topo),
		Docs:       servers * docsPer,
		Converged:  audit.Converged,
		ConvergeMs: float64(elapsed.Nanoseconds()) / 1e6,
		KilledMate: victim,
	}
	for _, fp := range audit.Fingerprints {
		res.SpuriousConflicts += fp.Conflicts
	}
	for _, m := range c.mesh {
		for _, st := range m.Status() {
			res.Rounds += st.Rounds
			res.LinkFailures += st.Failures
			res.NotesIn += st.NotesIn
			res.NotesOut += st.NotesOut
			res.BytesIn += st.BytesIn
			res.BytesOut += st.BytesOut
		}
	}
	for _, fn := range c.nets {
		st := fn.Stats()
		res.FaultDrops += st.Drops
		res.FaultSevers += st.Severs
	}
	return res
}

// w8Selective runs the selection-stub phase: a two-server link whose
// selection formula excludes low-priority documents. A document edited out
// of the selection must land as a selection stub at the destination — not
// silently linger — and the fingerprints must still converge.
func w8Selective(docs int) w8Result {
	names := []string{"src", "dst"}
	c := newW8Cluster(names, func(string) faultnet.Plan { return faultnet.Plan{} })
	defer c.close()
	link := domino.MeshLink{
		Name: "sel-link", Peer: "dst",
		Glob: "apps/*.nsf", Class: mesh.Hot, Interval: 50 * time.Millisecond,
		Formula: "Priority >= 2",
	}
	c.applyTopology([]domino.TopoLink{{Server: "src", Link: link}})

	srcDB, _ := c.srv["src"].DB(w8Path)
	sess := srcDB.Session("ada")
	var edited []*domino.Note
	for i := 0; i < docs; i++ {
		doc := domino.NewDocument()
		doc.SetText("Subject", fmt.Sprintf("sel doc %d", i))
		doc.SetNumber("Priority", 3)
		if err := sess.Create(doc); err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			edited = append(edited, doc)
		}
	}
	if _, audit := c.waitConverged(30 * time.Second); !audit.Converged {
		log.Fatal("w8 selective: initial convergence failed")
	}
	// Edit half the documents out of the selection.
	for _, doc := range edited {
		doc.SetNumber("Priority", 0)
		if err := sess.Update(doc); err != nil {
			log.Fatal(err)
		}
	}
	elapsed, audit := c.waitConverged(30 * time.Second)

	dstDB, _ := c.srv["dst"].DB(w8Path)
	stubs := 0
	for _, doc := range edited {
		if n, err := dstDB.RawGet(doc.OID.UNID); err == nil && n.IsSelStub() {
			stubs++
		}
	}
	res := w8Result{
		Topology: "selective", Servers: 2, Links: 1, Docs: docs,
		Converged:  audit.Converged,
		ConvergeMs: float64(elapsed.Nanoseconds()) / 1e6,
		SelStubs:   stubs,
	}
	for _, fp := range audit.Fingerprints {
		res.SpuriousConflicts += fp.Conflicts
	}
	for _, m := range c.mesh {
		for _, st := range m.Status() {
			res.Rounds += st.Rounds
			res.NotesIn += st.NotesIn
			res.NotesOut += st.NotesOut
		}
	}
	if stubs != len(edited) {
		fmt.Printf("  !! only %d/%d deselected docs observed as selection stubs\n", stubs, len(edited))
	}
	return res
}

const meshBaselineFile = "BENCH_mesh.json"

// loadMeshBaseline reads the committed W8 baseline (nil when absent).
func loadMeshBaseline() []w8Result {
	raw, err := os.ReadFile(meshBaselineFile)
	if err != nil {
		return nil
	}
	var results []w8Result
	if err := json.Unmarshal(raw, &results); err != nil {
		return nil
	}
	return results
}

// W8 drift tolerances: convergence time is wall-clock over a faulted
// network with breaker cooldowns in the path, so the guard is generous —
// it hunts a broken scheduler (convergence taking many cooldown cycles or
// never finishing), not jitter.
const (
	w8DriftRatio = 3.0
	w8FloorMs    = 500.0
)

// guardW8 re-runs the ring churn at quick sizes: the convergence and
// zero-spurious-conflict invariants must hold outright, and time to
// convergence is checked against the committed BENCH_mesh.json.
func guardW8(t *table) string {
	var want float64
	for _, r := range loadMeshBaseline() {
		if r.Topology == "ring" {
			want = r.ConvergeMs
		}
	}
	if want == 0 {
		return "W8 ring baseline missing; run `make bench-mesh` and commit " + meshBaselineFile
	}
	got := 0.0
	for trial := 0; trial < driftTrials; trial++ {
		r := w8Churn("ring", 4, 6, true)
		if !r.Converged {
			return "W8 ring replicas failed to converge"
		}
		if r.SpuriousConflicts > 0 {
			return fmt.Sprintf("W8 ring produced %d spurious conflicts", r.SpuriousConflicts)
		}
		if trial == 0 || r.ConvergeMs < got {
			got = r.ConvergeMs
		}
	}
	verdict := "ok"
	msg := ""
	if got > want*w8DriftRatio && got > want+w8FloorMs {
		verdict = "REGRESSED"
		msg = fmt.Sprintf("W8 ring convergence %.0fms vs baseline %.0fms", got, want)
	}
	t.add("W8 ring convergence", fmt.Sprintf("%.0fms", want), fmt.Sprintf("%.0fms", got), verdict)
	return msg
}

func runW8(quick bool) {
	servers := pick(quick, 8, 4)
	docsPer := pick(quick, 12, 6)
	var results []w8Result

	tab := newTable("topology", "servers", "links", "docs", "converged", "converge ms",
		"conflicts", "rounds", "fail", "in", "out", "drops", "severs", "killed")
	for _, topoName := range []string{"ring", "hub-spoke"} {
		r := w8Churn(topoName, servers, docsPer, quick)
		results = append(results, r)
		tab.add(r.Topology, r.Servers, r.Links, r.Docs, fmt.Sprint(r.Converged),
			fmt.Sprintf("%.0f", r.ConvergeMs), r.SpuriousConflicts,
			fmt.Sprint(r.Rounds), fmt.Sprint(r.LinkFailures),
			fmt.Sprint(r.NotesIn), fmt.Sprint(r.NotesOut),
			fmt.Sprint(r.FaultDrops), fmt.Sprint(r.FaultSevers), r.KilledMate)
	}
	selDocs := pick(quick, 12, 6)
	sel := w8Selective(selDocs)
	results = append(results, sel)
	tab.add(sel.Topology, sel.Servers, sel.Links, sel.Docs, fmt.Sprint(sel.Converged),
		fmt.Sprintf("%.0f", sel.ConvergeMs), sel.SpuriousConflicts,
		fmt.Sprint(sel.Rounds), "0", fmt.Sprint(sel.NotesIn), fmt.Sprint(sel.NotesOut),
		"0", "0", "")
	tab.print()

	bad := false
	for _, r := range results {
		if !r.Converged || r.SpuriousConflicts > 0 {
			bad = true
		}
	}
	if sel.SelStubs != (selDocs+1)/2 {
		bad = true
	}
	if bad {
		fmt.Println("  !! convergence audit FAILED (non-converged replicas, spurious conflicts, or missing selection stubs)")
	} else {
		fmt.Println("  (invariants: identical fingerprints on every replica, zero spurious conflicts,")
		fmt.Printf("   every deselected document observed as a selection stub — %d/%d)\n",
			sel.SelStubs, sel.SelStubs)
	}

	f, err := os.Create(meshBaselineFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to " + meshBaselineFile)
	if bad {
		os.Exit(1)
	}
}
