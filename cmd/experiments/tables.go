package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	domino "repro"
	"repro/internal/ft"
	"repro/internal/workload"
)

// tempDB opens a throwaway database; the caller must Close it.
func tempDB(title string, replica domino.ReplicaID) *domino.Database {
	dir, err := os.MkdirTemp("", "domino-exp")
	if err != nil {
		log.Fatal(err)
	}
	db, err := domino.Open(filepath.Join(dir, "exp.nsf"),
		domino.Options{Title: title, ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func seedDocs(db *domino.Database, g *workload.Generator, count, body int) []*domino.Note {
	sess := db.Session("exp")
	docs := g.Corpus(count, body)
	for _, n := range docs {
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
	}
	return docs
}

// timeOps runs fn and returns the per-operation latency given ops count.
func timeOps(ops int, fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start) / time.Duration(ops)
}

// --- T1: CRUD throughput vs document size ---

func runT1(quick bool) {
	ops := pick(quick, 2000, 300)
	t := newTable("body bytes", "create µs/op", "read µs/op", "update µs/op", "delete µs/op")
	for _, size := range []int{512, 2048, 8192} {
		db := tempDB("t1", domino.NewReplicaID())
		g := workload.New(int64(size))
		sess := db.Session("exp")
		docs := g.Corpus(ops, size)
		create := timeOps(ops, func() {
			for _, n := range docs {
				if err := sess.Create(n); err != nil {
					log.Fatal(err)
				}
			}
		})
		read := timeOps(ops, func() {
			for _, n := range docs {
				if _, err := sess.Get(n.OID.UNID); err != nil {
					log.Fatal(err)
				}
			}
		})
		update := timeOps(ops, func() {
			for _, n := range docs {
				g.Mutate(n)
				if err := sess.Update(n); err != nil {
					log.Fatal(err)
				}
			}
		})
		del := timeOps(ops, func() {
			for _, n := range docs {
				if err := sess.Delete(n.OID.UNID); err != nil {
					log.Fatal(err)
				}
			}
		})
		t.add(size, us(create), us(read), us(update), us(del))
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: latency grows sublinearly with body size; reads cheapest)")
}

func us(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3) }
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6) }

// --- T2: incremental view update vs rebuild ---

func runT2(quick bool) {
	sizes := []int{1000, 10000, 50000}
	if quick {
		sizes = []int{500, 2000}
	}
	t := newTable("docs", "incremental µs/update", "full rebuild ms", "rebuild/incremental")
	for _, n := range sizes {
		db := tempDB("t2", domino.NewReplicaID())
		g := workload.New(2)
		docs := seedDocs(db, g, n, 512)
		def, _ := domino.NewView("bycat", "SELECT @All",
			domino.ViewColumn{Title: "Category", ItemName: "Category", Sorted: true},
			domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
		if err := db.AddView(nil, def); err != nil {
			log.Fatal(err)
		}
		sess := db.Session("exp")
		updates := pick(quick, 200, 50)
		inc := timeOps(updates, func() {
			for i := 0; i < updates; i++ {
				d := docs[i%len(docs)]
				g.Mutate(d)
				if err := sess.Update(d); err != nil {
					log.Fatal(err)
				}
			}
		})
		start := time.Now()
		if err := db.AddView(nil, def); err != nil { // re-add forces rebuild
			log.Fatal(err)
		}
		rebuild := time.Since(start)
		ratio := float64(rebuild) / float64(inc)
		t.add(n, us(inc), ms(rebuild), fmt.Sprintf("%.0fx", ratio))
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: rebuild cost grows with N; incremental stays ~flat)")
}

// --- T3: stub purge cutoff vs resurrection ---

func runT3(quick bool) {
	docs := pick(quick, 200, 50)
	deletes := docs / 4
	t := newTable("scenario", "stubs kept", "deleted docs", "resurrected after sync")
	for _, purgeEarly := range []bool{false, true} {
		replica := domino.NewReplicaID()
		a := tempDB("t3-a", replica)
		b := tempDB("t3-b", replica)
		g := workload.New(3)
		seeded := seedDocs(a, g, docs, 256)
		mustReplicate(b, a, "a")
		// While b is "offline": a deletes a quarter of the documents, and
		// the b user keeps editing those same documents on their laptop.
		sess := a.Session("exp")
		for i := 0; i < deletes; i++ {
			if err := sess.Delete(seeded[i].OID.UNID); err != nil {
				log.Fatal(err)
			}
			bd, err := b.Session("exp").Get(seeded[i].OID.UNID)
			if err != nil {
				log.Fatal(err)
			}
			g.Mutate(bd)
			// Two edits so the laptop version has the higher sequence
			// number: without the stub, nothing marks it as deleted.
			if err := b.Session("exp").Update(bd); err != nil {
				log.Fatal(err)
			}
			g.Mutate(bd)
			if err := b.Session("exp").Update(bd); err != nil {
				log.Fatal(err)
			}
		}
		stubs := deletes
		if purgeEarly {
			purged, err := a.PurgeStubs(a.Clock().Now() + 1)
			if err != nil {
				log.Fatal(err)
			}
			stubs -= purged
		}
		// b comes back online and syncs (twice, for both directions to
		// settle).
		mustReplicate(b, a, "a")
		mustReplicate(b, a, "a")
		resurrected := 0
		for i := 0; i < deletes; i++ {
			if _, err := a.Session("exp").Get(seeded[i].OID.UNID); err == nil {
				resurrected++
			}
		}
		name := "cutoff > offline time (correct)"
		if purgeEarly {
			name = "cutoff < offline time (anomaly)"
		}
		t.add(name, stubs, deletes, resurrected)
		a.Close()
		b.Close()
	}
	t.print()
	fmt.Println("  (shape check: with stubs intact, deletion wins the delete-vs-edit race;")
	fmt.Println("   purging stubs before the offline replica syncs resurrects the deletes)")
}

func mustReplicate(local *domino.Database, peer *domino.Database, name string) domino.ReplicationStats {
	st, err := domino.Replicate(local, &domino.LocalPeer{DB: peer},
		domino.ReplicationOptions{PeerName: name})
	if err != nil {
		log.Fatal(err)
	}
	return st
}

// --- T4: recovery time vs ops since checkpoint ---

func runT4(quick bool) {
	sizes := []int{1000, 10000, 50000}
	if quick {
		sizes = []int{500, 2000}
	}
	t := newTable("ops since checkpoint", "WAL bytes", "recovery ms")
	for _, ops := range sizes {
		dir, _ := os.MkdirTemp("", "domino-exp")
		path := filepath.Join(dir, "crash.nsf")
		db, err := domino.Open(path, domino.Options{Store: storeNoCheckpoint()})
		if err != nil {
			log.Fatal(err)
		}
		g := workload.New(4)
		sess := db.Session("exp")
		for i := 0; i < ops; i++ {
			if err := sess.Create(g.Document(512)); err != nil {
				log.Fatal(err)
			}
		}
		wal := db.Stats().WALBytes
		// Crash: reopen without closing.
		start := time.Now()
		db2, err := domino.Open(path, domino.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rec := time.Since(start)
		t.add(ops, wal, ms(rec))
		db2.Close()
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: recovery time scales ~linearly with the unflushed WAL)")
}

// --- T5: reader-field enforcement overhead ---

func runT5(quick bool) {
	n := pick(quick, 5000, 1000)
	t := newTable("restricted docs", "view rows visible", "read all rows ms")
	for _, pct := range []int{0, 50, 95} {
		db := tempDB("t5", domino.NewReplicaID())
		g := workload.New(5)
		sess := db.Session("writer")
		for i := 0; i < n; i++ {
			doc := g.Document(256)
			if i*100/n < pct {
				doc.SetWithFlags("DocReaders", domino.TextValue("somebody else"),
					domino.FlagReaders|domino.FlagSummary)
			}
			if err := sess.Create(doc); err != nil {
				log.Fatal(err)
			}
		}
		def, _ := domino.NewView("v", "SELECT @All",
			domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
		if err := db.AddView(nil, def); err != nil {
			log.Fatal(err)
		}
		reader := db.Session("reader")
		var rows int
		reps := pick(quick, 20, 5)
		d := timeOps(reps, func() {
			for i := 0; i < reps; i++ {
				r, err := reader.Rows("v")
				if err != nil {
					log.Fatal(err)
				}
				rows = len(r)
			}
		})
		t.add(fmt.Sprintf("%d%%", pct), rows, ms(d))
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: filtering cost is flat; visible rows shrink with restriction)")
}

// --- T7: formula cost ---

func runT7(quick bool) {
	iters := pick(quick, 20000, 2000)
	g := workload.New(7)
	docs := g.Corpus(256, 512)
	t := newTable("formula", "ns/eval")
	for _, tc := range []struct{ name, src string }{
		{"simple", `SELECT Form = "Memo"`},
		{"medium", `SELECT Form = "Memo" & Priority > 3 & @Contains(Subject; "report")`},
		{"complex", `x := @UpperCase(@Left(Subject; 10));
			y := @If(Priority > 5; "high"; Priority > 2; "mid"; "low");
			SELECT @Begins(x; "A") | (y = "high" & @Elements(@Explode(Body; " ")) > 20)`},
	} {
		f, err := domino.CompileFormula(tc.src)
		if err != nil {
			log.Fatal(err)
		}
		d := timeOps(iters, func() {
			for i := 0; i < iters; i++ {
				if _, err := f.Selects(docs[i%len(docs)], nil); err != nil {
					log.Fatal(err)
				}
			}
		})
		t.add(tc.name, d.Nanoseconds())
	}
	t.print()
}

// --- F3: full-text index vs scan ---

func runF3(quick bool) {
	sizes := []int{1000, 10000, 50000}
	if quick {
		sizes = []int{500, 2000}
	}
	t := newTable("docs", "indexed µs/query", "scan µs/query", "speedup")
	for _, n := range sizes {
		db := tempDB("f3", domino.NewReplicaID())
		g := workload.New(6)
		seedDocs(db, g, n, 512)
		if err := db.EnableFullText(); err != nil {
			log.Fatal(err)
		}
		queries := g.Queries(32)
		sess := db.Session("exp")
		reps := pick(quick, 200, 30)
		indexed := timeOps(reps, func() {
			for i := 0; i < reps; i++ {
				if _, err := sess.Search(queries[i%len(queries)]); err != nil {
					log.Fatal(err)
				}
			}
		})
		scanReps := pick(quick, 10, 3)
		scan := timeOps(scanReps, func() {
			for i := 0; i < scanReps; i++ {
				if _, err := ft.ScanSearch(queries[i%len(queries)], db.ScanAll); err != nil {
					log.Fatal(err)
				}
			}
		})
		t.add(n, us(indexed), us(scan), fmt.Sprintf("%.0fx", float64(scan)/float64(indexed)))
		db.Close()
	}
	t.print()
	fmt.Println("  (shape check: scan grows linearly with corpus; index stays ~flat)")
}
