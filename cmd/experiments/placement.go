package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	domino "repro"
)

// --- W6: partitioned namespace — live moves and dead-mate re-homing ---
//
// The placement layer's two claims, measured end to end:
//
// Phase A: a database moves between mates while a client streams writes
// through it. The move's drain fence plus the WrongMate redirect protocol
// mean the client never loses an acknowledged write and lands on the new
// home without reconfiguration.
//
// Phase B: a cluster of three mates homes a namespace of databases by
// rendezvous placement; one mate (homing about a third of them) is killed.
// Each of its databases is re-homed onto a survivor from its last hot
// backup image plus a catch-up pass over the dead disk, and the placement
// generation flips so clients re-route. The audit walks every write any
// client saw acknowledged and requires all of them on the new homes.

// w6Result is one measured phase, serialized to BENCH_placement.json as
// the regression baseline.
type w6Result struct {
	Phase          string  `json:"phase"`
	Databases      int     `json:"databases,omitempty"`
	Mates          int     `json:"mates,omitempty"`
	DeadHomed      int     `json:"dead_homed,omitempty"`
	Acked          int     `json:"acked,omitempty"`
	LostAcked      int     `json:"lost_acked"`
	MoveMs         float64 `json:"move_ms,omitempty"`
	MovedNotes     int     `json:"moved_notes,omitempty"`
	CatchupRounds  int     `json:"catchup_rounds,omitempty"`
	Generation     uint64  `json:"generation,omitempty"`
	Redirects      uint64  `json:"redirects,omitempty"`
	RehomeMedianMs float64 `json:"rehome_median_ms,omitempty"`
	RehomeMaxMs    float64 `json:"rehome_max_ms,omitempty"`
}

// w6Cluster is a shared-directory cluster for the placement experiment.
type w6Cluster struct {
	base  string
	d     *domino.Directory
	names []string
	srv   map[string]*domino.Server
	addr  map[string]string
}

func newW6Cluster(names ...string) *w6Cluster {
	base, err := os.MkdirTemp("", "domino-w6")
	if err != nil {
		log.Fatal(err)
	}
	c := &w6Cluster{
		base: base, d: domino.NewDirectory(), names: names,
		srv: map[string]*domino.Server{}, addr: map[string]string{},
	}
	c.d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	for _, name := range names {
		c.d.AddUser(domino.User{Name: name, Secret: name + "-secret"})
		s, err := domino.NewServer(domino.ServerOptions{
			Name: name, DataDir: filepath.Join(base, name),
			Directory: c.d, PeerSecret: name + "-secret",
		})
		if err != nil {
			log.Fatal(err)
		}
		c.srv[name] = s
	}
	for _, name := range names {
		addr, err := c.srv[name].Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		c.addr[name] = addr
	}
	for _, name := range names {
		peers := map[string]string{}
		for _, other := range names {
			if other != name {
				peers[other] = c.addr[other]
			}
		}
		c.srv[name].SetPeers(peers)
	}
	return c
}

func (c *w6Cluster) open(mate, path string, replica domino.ReplicaID) *domino.Database {
	db, err := c.srv[mate].OpenDB(path, domino.Options{Title: path, ReplicaID: replica})
	if err != nil {
		log.Fatal(err)
	}
	db.ACL().Set("ada", domino.Editor)
	for _, name := range c.names {
		db.ACL().Set(name, domino.Editor)
	}
	return db
}

func (c *w6Cluster) close() {
	for _, s := range c.srv {
		s.Close()
	}
	os.RemoveAll(c.base)
}

func (c *w6Cluster) addrs() []string {
	out := make([]string, 0, len(c.names))
	for _, n := range c.names {
		out = append(out, c.addr[n])
	}
	return out
}

// ackedCreate issues one create through a failover handle with the
// read-back recovery protocol; it returns false only if the write was
// never acknowledged anywhere.
func ackedCreate(db *domino.FailoverDB, n *domino.Note) bool {
	for attempt := 0; attempt < 2000; attempt++ {
		if err := db.Create(n); err == nil {
			return true
		}
		if _, gerr := db.Get(n.OID.UNID); gerr == nil {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// w6LiveMove runs Phase A: one database, a streaming writer, a live move
// under it.
func w6LiveMove(docs int) w6Result {
	c := newW6Cluster("alpha", "beta")
	defer c.close()
	const path = "apps/move.nsf"
	c.open("alpha", path, domino.NewReplicaID())
	if _, err := c.d.SetPlacement(path, []string{"alpha"}, 1); err != nil {
		log.Fatal(err)
	}

	fc, err := domino.DialFailover(c.addrs(), "ada", "pw", domino.FailoverOptions{
		Client: domino.ClientOptions{MaxRetries: -1, BackoffBase: time.Millisecond,
			BackoffMax: 5 * time.Millisecond, DialTimeout: 2 * time.Second},
		Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB(path)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var acked []domino.UNID
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			n := domino.NewDocument()
			n.SetText("Subject", fmt.Sprintf("w6 doc %d", i))
			if ackedCreate(db, n) {
				mu.Lock()
				acked = append(acked, n.OID.UNID)
				mu.Unlock()
			}
		}
	}()
	waitAcked := func(min int) {
		for {
			mu.Lock()
			n := len(acked)
			mu.Unlock()
			if n >= min {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitAcked(docs / 2)

	res, err := domino.MoveDatabase(c.d, c.srv["alpha"], c.srv["beta"], path, domino.MoveOptions{
		BackupRoot: filepath.Join(c.base, "imgroot"), QuiesceTimeout: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The writer must keep acking after the flip — through the stale-cache
	// redirect — before the audit runs.
	mu.Lock()
	atMove := len(acked)
	mu.Unlock()
	waitAcked(atMove + docs/2)
	stop.Store(true)
	<-done

	lost := 0
	newHome, _ := c.srv["beta"].DB(path)
	for _, u := range acked {
		if _, err := newHome.RawGet(u); err != nil {
			lost++
		}
	}
	return w6Result{
		Phase:         "live-move",
		Acked:         len(acked),
		LostAcked:     lost,
		MoveMs:        float64(res.Elapsed.Nanoseconds()) / 1e6,
		MovedNotes:    res.Moved,
		CatchupRounds: res.Rounds,
		Generation:    res.Generation,
		Redirects:     fc.Stats().WrongMateRedirects,
	}
}

// w6Rehome runs Phase B: rendezvous-place a namespace over three mates,
// kill one, recover its share onto the survivors.
func w6Rehome(dbs, docs, delta, post int) w6Result {
	c := newW6Cluster("alpha", "beta", "gamma")
	defer c.close()

	// Rendezvous-place the namespace, one home mate per database, and open
	// each database on its home.
	paths := make([]string, dbs)
	home := map[string]string{}
	for i := range paths {
		paths[i] = fmt.Sprintf("apps/db%02d.nsf", i)
		p, err := c.d.AssignPlacement(paths[i], c.names, 1)
		if err != nil {
			log.Fatal(err)
		}
		home[paths[i]] = p.Home[0]
		c.open(p.Home[0], paths[i], domino.NewReplicaID())
	}

	fc, err := domino.DialFailover(c.addrs(), "ada", "pw", domino.FailoverOptions{
		Client: domino.ClientOptions{MaxRetries: -1, BackoffBase: time.Millisecond,
			BackoffMax: 5 * time.Millisecond, DialTimeout: 2 * time.Second},
		Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	handles := map[string]*domino.FailoverDB{}
	acked := map[string][]domino.UNID{}
	write := func(path string, k int) {
		for i := 0; i < k; i++ {
			n := domino.NewDocument()
			n.SetText("Subject", fmt.Sprintf("%s doc %d", path, len(acked[path])))
			if ackedCreate(handles[path], n) {
				acked[path] = append(acked[path], n.OID.UNID)
			}
		}
	}
	for _, path := range paths {
		h, err := fc.OpenDB(path)
		if err != nil {
			log.Fatal(err)
		}
		handles[path] = h
		write(path, docs)
	}

	// Scheduled hot backups on every mate, then more writes: the delta
	// exists only on the home mates' disks, beyond the images.
	for _, name := range c.names {
		if _, err := c.srv[name].BackupAll(filepath.Join(c.base, "backup-"+name), true); err != nil {
			log.Fatal(err)
		}
	}
	for _, path := range paths {
		write(path, delta)
	}

	// Kill the mate homing the largest share of the namespace.
	perMate := map[string]int{}
	for _, h := range home {
		perMate[h]++
	}
	dead := c.names[0]
	for _, name := range c.names[1:] {
		if perMate[name] > perMate[dead] {
			dead = name
		}
	}
	c.srv[dead].Close()

	// Re-home every database the dead mate homed onto the survivors
	// (round-robin), from its backup image plus the dead disk.
	survivors := make([]string, 0, len(c.names)-1)
	for _, name := range c.names {
		if name != dead {
			survivors = append(survivors, name)
		}
	}
	var rehomeTimes []time.Duration
	deadHomed := 0
	next := 0
	for _, path := range paths {
		if home[path] != dead {
			continue
		}
		deadHomed++
		dst := survivors[next%len(survivors)]
		next++
		res, err := domino.RecoverDatabase(c.d, dead, c.srv[dst], path, domino.RecoverOptions{
			BackupRoot:  filepath.Join(c.base, "backup-"+dead),
			DeadDataDir: filepath.Join(c.base, dead),
		})
		if err != nil {
			log.Fatal(err)
		}
		home[path] = dst
		rehomeTimes = append(rehomeTimes, res.Elapsed)
	}

	// The pre-kill handles are stale: their cached placement names the dead
	// mate. Writing through them exercises the redirect/re-resolve path.
	for _, path := range paths {
		write(path, post)
	}

	// Audit: every write any client saw acknowledged exists on the
	// database's current home.
	total, lost := 0, 0
	for _, path := range paths {
		db, ok := c.srv[home[path]].DB(path)
		if !ok {
			log.Fatalf("w6: %s has no copy of %s", home[path], path)
		}
		for _, u := range acked[path] {
			total++
			if _, err := db.RawGet(u); err != nil {
				lost++
			}
		}
	}
	sort.Slice(rehomeTimes, func(i, j int) bool { return rehomeTimes[i] < rehomeTimes[j] })
	res := w6Result{
		Phase:     "rehome",
		Databases: dbs,
		Mates:     len(c.names),
		DeadHomed: deadHomed,
		Acked:     total,
		LostAcked: lost,
		Redirects: fc.Stats().WrongMateRedirects,
	}
	if len(rehomeTimes) > 0 {
		res.RehomeMedianMs = float64(percentile(rehomeTimes, 0.50).Nanoseconds()) / 1e6
		res.RehomeMaxMs = float64(rehomeTimes[len(rehomeTimes)-1].Nanoseconds()) / 1e6
	}
	return res
}

const placementBaselineFile = "BENCH_placement.json"

// loadPlacementBaseline reads the committed W6 baseline (nil when absent).
func loadPlacementBaseline() []w6Result {
	raw, err := os.ReadFile(placementBaselineFile)
	if err != nil {
		return nil
	}
	var results []w6Result
	if err := json.Unmarshal(raw, &results); err != nil {
		return nil
	}
	return results
}

// W6 drift tolerances: a re-home is wall-clock dominated (backup restore,
// file replication, directory flip), so the guard is generous — it hunts a
// broken move pipeline, not scheduler noise.
const (
	w6DriftRatio = 2.0  // fail when worse than baseline by more than 2x
	w6FloorMs    = 50.0 // and by more than 50ms
)

// guardW6 re-measures the dead-mate re-home median at quick sizes against
// the committed BENCH_placement.json; returns a failure message or "".
func guardW6(t *table) string {
	var want float64
	for _, r := range loadPlacementBaseline() {
		if r.Phase == "rehome" {
			want = r.RehomeMedianMs
		}
	}
	if want == 0 {
		return "W6 rehome median missing from baseline; run `make bench-placement` and commit " + placementBaselineFile
	}
	got := 0.0
	for trial := 0; trial < driftTrials; trial++ {
		r := w6Rehome(6, 8, 4, 0)
		if r.LostAcked > 0 {
			return fmt.Sprintf("W6 re-home lost %d acked writes", r.LostAcked)
		}
		if trial == 0 || r.RehomeMedianMs < got {
			got = r.RehomeMedianMs
		}
	}
	verdict := "ok"
	msg := ""
	if got > want*w6DriftRatio && got > want+w6FloorMs {
		verdict = "REGRESSED"
		msg = fmt.Sprintf("W6 rehome median %.1fms vs baseline %.1fms", got, want)
	}
	t.add("W6 rehome median", fmt.Sprintf("%.1fms", want), fmt.Sprintf("%.1fms", got), verdict)
	return msg
}

func runW6(quick bool) {
	var results []w6Result

	mv := w6LiveMove(pick(quick, 40, 16))
	results = append(results, mv)
	ta := newTable("acked", "lost acked", "move ms", "notes moved", "rounds", "gen", "redirects")
	ta.add(mv.Acked, mv.LostAcked, fmt.Sprintf("%.1f", mv.MoveMs), mv.MovedNotes,
		mv.CatchupRounds, fmt.Sprint(mv.Generation), fmt.Sprint(mv.Redirects))
	fmt.Println("  Phase A: live move under a streaming writer")
	ta.print()
	if mv.LostAcked != 0 {
		fmt.Printf("  !! %d acknowledged writes lost across the move\n", mv.LostAcked)
	} else {
		fmt.Println("  (invariant: zero acknowledged writes lost across the move)")
	}

	re := w6Rehome(pick(quick, 12, 6), pick(quick, 20, 8), pick(quick, 8, 4), pick(quick, 6, 3))
	results = append(results, re)
	tb := newTable("dbs", "mates", "dead homed", "acked", "lost acked",
		"rehome median ms", "rehome max ms", "redirects")
	tb.add(re.Databases, re.Mates, re.DeadHomed, re.Acked, re.LostAcked,
		fmt.Sprintf("%.1f", re.RehomeMedianMs), fmt.Sprintf("%.1f", re.RehomeMaxMs),
		fmt.Sprint(re.Redirects))
	fmt.Println("  Phase B: kill the mate homing the largest namespace share, re-home onto survivors")
	tb.print()
	if re.LostAcked != 0 {
		fmt.Printf("  !! %d acknowledged writes lost across the re-home\n", re.LostAcked)
	} else {
		fmt.Println("  (invariant: zero acknowledged writes lost across the mate kill + re-home)")
	}

	f, err := os.Create("BENCH_placement.json")
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to BENCH_placement.json")
}
