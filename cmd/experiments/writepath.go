package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	domino "repro"
	"repro/internal/workload"
)

// --- W1: write-path latency vs number of open change consumers ---
//
// The changefeed claim: Put latency is independent of how many views (and
// whether a full-text index) are open, because maintenance happens on
// subscriber goroutines. The "+refresh" rows re-add the cost by placing a
// full refresh barrier after every write — the synchronous-equivalent
// configuration the old write path always paid.

// wpResult is one measured configuration, serialized to
// BENCH_writepath.json as the regression baseline.
type wpResult struct {
	Views     int     `json:"views"`
	FullText  bool    `json:"fulltext"`
	Refreshed bool    `json:"refreshed"`
	Ops       int     `json:"ops"`
	P50us     float64 `json:"p50_us"`
	P95us     float64 `json:"p95_us"`
	Meanus    float64 `json:"mean_us"`
}

// wpDB opens a database with the requested consumers attached.
func wpDB(views int, fulltext bool) *domino.Database {
	db := tempDB("w1", domino.NewReplicaID())
	for v := 0; v < views; v++ {
		def, err := domino.NewView(fmt.Sprintf("w%d", v), "SELECT @All",
			domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true},
			domino.ViewColumn{Title: "Cat", ItemName: "Category", Sorted: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AddView(nil, def); err != nil {
			log.Fatal(err)
		}
	}
	if fulltext {
		if err := db.EnableFullText(); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// measureWrites runs ops creates and returns per-op percentiles.
func measureWrites(db *domino.Database, ops int, refreshed bool, seed int64) wpResult {
	g := workload.New(seed)
	docs := g.Corpus(ops, 512)
	sess := db.Session("exp")
	lats := make([]time.Duration, 0, ops)
	var total time.Duration
	for _, n := range docs {
		start := time.Now()
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
		if refreshed {
			db.Refresh()
		}
		d := time.Since(start)
		lats = append(lats, d)
		total += d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	toUs := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return wpResult{
		Refreshed: refreshed,
		Ops:       ops,
		P50us:     toUs(percentile(lats, 0.50)),
		P95us:     toUs(percentile(lats, 0.95)),
		Meanus:    toUs(total / time.Duration(ops)),
	}
}

func runW1(quick bool) {
	ops := pick(quick, 3000, 400)
	var results []wpResult
	t := newTable("views", "fulltext", "mode", "p50 µs", "p95 µs", "mean µs")
	for _, views := range []int{0, 1, 8} {
		for _, ftOn := range []bool{false, true} {
			db := wpDB(views, ftOn)
			r := measureWrites(db, ops, false, int64(100+views))
			r.Views, r.FullText = views, ftOn
			results = append(results, r)
			t.add(views, fmt.Sprint(ftOn), "async", r.P50us, r.P95us, r.Meanus)
			db.Refresh()
			db.Close()
		}
	}
	for _, views := range []int{0, 8} {
		db := wpDB(views, false)
		r := measureWrites(db, ops, true, int64(200+views))
		r.Views = views
		results = append(results, r)
		t.add(views, "false", "+refresh", r.P50us, r.P95us, r.Meanus)
		db.Close()
	}
	t.print()
	var p50v0, p50v8 float64
	for _, r := range results {
		if !r.Refreshed && !r.FullText {
			if r.Views == 0 {
				p50v0 = r.P50us
			}
			if r.Views == 8 {
				p50v8 = r.P50us
			}
		}
	}
	if p50v0 > 0 {
		fmt.Printf("  p50 ratio 8 views / 0 views = %.2fx (target: <= 1.5x)\n", p50v8/p50v0)
	}
	fmt.Println("  (shape check: async p50 flat in consumer count; +refresh pays it back)")
	base := loadWPBaseline()
	base.W1 = results
	saveWPBaseline(base)
	fmt.Println("  baseline written to " + wpBaselineFile)
}

// --- write-path baseline file (shared by W1, W7, and the drift guard) ---

// wpBaseline is the committed write-path baseline: the W1 consumer matrix
// plus the W7 group-commit scaling matrix. Each experiment rewrites only
// its own section, so regenerating one does not discard the other.
type wpBaseline struct {
	W1 []wpResult `json:"w1"`
	W7 []w7Result `json:"w7"`
}

const wpBaselineFile = "BENCH_writepath.json"

func loadWPBaseline() wpBaseline {
	var base wpBaseline
	raw, err := os.ReadFile(wpBaselineFile)
	if err != nil {
		return base
	}
	if json.Unmarshal(raw, &base) != nil {
		// Legacy layout: a flat W1 array from before W7 existed.
		var flat []wpResult
		if json.Unmarshal(raw, &flat) == nil {
			base.W1 = flat
		}
	}
	return base
}

func saveWPBaseline(base wpBaseline) {
	f, err := os.Create(wpBaselineFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// --- W7: group-commit write scaling (writers x SyncWAL x group commit) ---
//
// The group-commit claim: with SyncWAL on, N concurrent writers share one
// WAL force per commit window instead of paying one fsync each, so the
// aggregate put rate scales with the writer count instead of being pinned
// to the disk's fsync rate. The SyncWAL-on / group-commit-off column is the
// per-op-fsync discipline every configuration used before this change; the
// acceptance target (>=5x at 64 writers) is measured against it.

// w7Result is one measured configuration of the scaling matrix.
type w7Result struct {
	Writers     int     `json:"writers"`
	SyncWAL     bool    `json:"sync_wal"`
	GroupCommit bool    `json:"group_commit"`
	Ops         int     `json:"ops"`
	PutsPerSec  float64 `json:"puts_per_sec"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	WALFlushes  uint64  `json:"wal_flushes"`
	WALRecords  uint64  `json:"wal_records"`
}

// w7Window is the commit window used whenever group commit is on — the
// value the dominod -groupcommit flag documents as a good SyncWAL default.
const w7Window = 200 * time.Microsecond

// measureW7 runs writers goroutines of opsPer puts each against one fresh
// database and reports aggregate throughput plus per-op latency.
func measureW7(writers, opsPer int, syncWAL, groupCommit bool) w7Result {
	dir, err := os.MkdirTemp("", "domino-w7")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var window time.Duration
	if groupCommit {
		window = w7Window
	}
	db, err := domino.Open(filepath.Join(dir, "w7.nsf"), domino.Options{
		Title:     "w7",
		ReplicaID: domino.NewReplicaID(),
		Store:     domino.StoreOptions{SyncWAL: syncWAL, GroupCommitWindow: window},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Generate every writer's corpus before the clock starts.
	corpora := make([][]*domino.Note, writers)
	for w := range corpora {
		corpora[w] = workload.New(int64(700+w)).Corpus(opsPer, 256)
	}
	lats := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("w7-%d", w))
			ls := make([]time.Duration, 0, opsPer)
			for _, n := range corpora[w] {
				t0 := time.Now()
				if err := sess.Create(n); err != nil {
					log.Fatal(err)
				}
				ls = append(ls, time.Since(t0))
			}
			lats[w] = ls
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := db.Stats()
	db.Close()

	all := make([]time.Duration, 0, writers*opsPer)
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	toUs := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return w7Result{
		Writers:     writers,
		SyncWAL:     syncWAL,
		GroupCommit: groupCommit,
		Ops:         writers * opsPer,
		PutsPerSec:  float64(writers*opsPer) / elapsed.Seconds(),
		P50us:       toUs(percentile(all, 0.50)),
		P95us:       toUs(percentile(all, 0.95)),
		WALFlushes:  st.GroupCommitFlushes,
		WALRecords:  st.GroupCommitRecords,
	}
}

func runW7(quick bool) {
	opsPer := pick(quick, 150, 30)
	var results []w7Result
	t := newTable("writers", "syncWAL", "group commit", "puts/s", "p50 µs", "p95 µs", "records/flush")
	for _, writers := range []int{1, 4, 16, 64} {
		for _, syncWAL := range []bool{false, true} {
			for _, gc := range []bool{false, true} {
				r := measureW7(writers, opsPer, syncWAL, gc)
				results = append(results, r)
				amort := "-"
				if r.WALFlushes > 0 {
					amort = fmt.Sprintf("%.1f", float64(r.WALRecords)/float64(r.WALFlushes))
				}
				t.add(writers, fmt.Sprint(syncWAL), fmt.Sprint(gc),
					fmt.Sprintf("%.0f", r.PutsPerSec), r.P50us, r.P95us, amort)
			}
		}
	}
	t.print()
	var fsync64, gc64 float64
	for _, r := range results {
		if r.Writers == 64 && r.SyncWAL {
			if r.GroupCommit {
				gc64 = r.PutsPerSec
			} else {
				fsync64 = r.PutsPerSec
			}
		}
	}
	if fsync64 > 0 {
		fmt.Printf("  64 writers, SyncWAL on: group commit = %.1fx per-op fsync (target: >= 5x)\n",
			gc64/fsync64)
	}
	fmt.Println("  (shape check: SyncWAL throughput pinned to fsync rate without group commit, scales with writers with it)")
	base := loadWPBaseline()
	base.W7 = results
	saveWPBaseline(base)
	fmt.Println("  baseline written to " + wpBaselineFile)
}

// --- GUARD: write-path bench drift guard ---
//
// Re-measures a pinned subset of the W1 and W7 configurations and fails
// (non-zero exit, so `make drift` fails CI) when a fresh median regresses
// more than 30% against the committed BENCH_writepath.json. Each probe
// keeps the best of three trials and applies a small absolute floor: the
// guard hunts real regressions — a serialized write path, a lost fsync
// amortization — not scheduler noise.

const (
	driftRatio   = 1.30 // fail when worse than baseline by more than 30%
	driftFloorUs = 15.0 // and by more than 15µs: sub-µs medians jitter
	driftTrials  = 3
)

func runGuard(quick bool) {
	base := loadWPBaseline()
	if len(base.W1) == 0 || len(base.W7) == 0 {
		log.Fatalf("GUARD: %s lacks a w1/w7 baseline; run `make bench-writepath` and commit the result", wpBaselineFile)
	}
	var failures []string
	t := newTable("probe", "baseline", "fresh", "verdict")

	// W1 probes: async put p50 with 0 and 8 open views (no full-text).
	ops := pick(quick, 1500, 400)
	for _, views := range []int{0, 8} {
		var want float64
		for _, r := range base.W1 {
			if r.Views == views && !r.FullText && !r.Refreshed {
				want = r.P50us
			}
		}
		if want == 0 {
			failures = append(failures, fmt.Sprintf("W1 views=%d missing from baseline", views))
			continue
		}
		got := 0.0
		for trial := 0; trial < driftTrials; trial++ {
			db := wpDB(views, false)
			r := measureWrites(db, ops, false, int64(400+views+trial))
			db.Refresh()
			db.Close()
			if trial == 0 || r.P50us < got {
				got = r.P50us
			}
		}
		verdict := "ok"
		if got > want*driftRatio && got > want+driftFloorUs {
			verdict = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("W1 views=%d put p50 %.1fµs vs baseline %.1fµs", views, got, want))
		}
		t.add(fmt.Sprintf("W1 put p50 (views=%d)", views),
			fmt.Sprintf("%.1fµs", want), fmt.Sprintf("%.1fµs", got), verdict)
	}

	// W7 probes: the fsync-bound single writer and the group-committed
	// 64-writer configuration — the two ends of the amortization claim.
	opsPer := pick(quick, 150, 60)
	for _, probe := range []struct {
		writers int
		gc      bool
	}{{1, false}, {64, true}} {
		var want float64
		for _, r := range base.W7 {
			if r.Writers == probe.writers && r.SyncWAL && r.GroupCommit == probe.gc {
				want = r.PutsPerSec
			}
		}
		if want == 0 {
			failures = append(failures,
				fmt.Sprintf("W7 writers=%d gc=%v missing from baseline", probe.writers, probe.gc))
			continue
		}
		got := 0.0
		for trial := 0; trial < driftTrials; trial++ {
			r := measureW7(probe.writers, opsPer, true, probe.gc)
			if r.PutsPerSec > got {
				got = r.PutsPerSec
			}
		}
		verdict := "ok"
		if got*driftRatio < want {
			verdict = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("W7 writers=%d gc=%v throughput %.0f/s vs baseline %.0f/s",
					probe.writers, probe.gc, got, want))
		}
		t.add(fmt.Sprintf("W7 puts/s (writers=%d, gc=%v)", probe.writers, probe.gc),
			fmt.Sprintf("%.0f/s", want), fmt.Sprintf("%.0f/s", got), verdict)
	}

	// W6 probe: dead-mate re-home median (wall-clock dominated, so its own
	// generous tolerances; also re-checks the zero-lost-acked-writes audit).
	if msg := guardW6(t); msg != "" {
		failures = append(failures, msg)
	}

	// W8 probe: mesh ring convergence under churn (also re-checks the
	// converged-fingerprints and zero-spurious-conflicts invariants).
	if msg := guardW8(t); msg != "" {
		failures = append(failures, msg)
	}
	if msg := guardW9(t); msg != "" {
		failures = append(failures, msg)
	}

	// W10 probe: hedged-read tail under a stalled mate (wall-clock
	// dominated; also re-checks the wasted-work and write-safety audits
	// committed in the deadline baseline).
	if msg := guardW10(t); msg != "" {
		failures = append(failures, msg)
	}

	t.print()
	if len(failures) > 0 {
		log.Fatalf("GUARD: bench drift:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("  no drift beyond tolerance against the committed baselines")
}

// --- W2: incremental view refresh vs rebuild under concurrent writers ---
//
// The T2 experiment re-run with the write load still running: readers use
// the refresh barrier (incremental catch-up) or force a full rebuild while
// writers churn documents. The feed keeps maintenance incremental; the
// resync counter shows whether the churn ever forced the rebuild fallback.

func runW2(quick bool) {
	n := pick(quick, 10000, 1000)
	db := tempDB("w2", domino.NewReplicaID())
	defer db.Close()
	g := workload.New(7)
	docs := seedDocs(db, g, n, 512)
	def, _ := domino.NewView("bycat", "SELECT @All",
		domino.ViewColumn{Title: "Category", ItemName: "Category", Sorted: true},
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err := db.AddView(nil, def); err != nil {
		log.Fatal(err)
	}

	// Background churn: 4 writers mutating documents until stopped.
	var stop atomic.Bool
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wg2 := workload.New(int64(300 + w))
			sess := db.Session(fmt.Sprintf("writer%d", w))
			for i := 0; !stop.Load(); i++ {
				d := docs[(w*1000+i)%len(docs)].Clone()
				wg2.Mutate(d)
				if err := sess.Update(d); err != nil {
					log.Fatal(err)
				}
				wrote.Add(1)
			}
		}(w)
	}

	reads := pick(quick, 200, 40)
	var refreshLats []time.Duration
	for i := 0; i < reads; i++ {
		start := time.Now()
		if _, ok := db.View("bycat"); !ok { // barrier + lookup
			log.Fatal("view lost")
		}
		refreshLats = append(refreshLats, time.Since(start))
	}
	sort.Slice(refreshLats, func(i, j int) bool { return refreshLats[i] < refreshLats[j] })

	rebuilds := 3
	start := time.Now()
	for i := 0; i < rebuilds; i++ {
		if err := db.AddView(nil, def); err != nil { // re-add forces rebuild
			log.Fatal(err)
		}
	}
	rebuild := time.Since(start) / time.Duration(rebuilds)

	stop.Store(true)
	wg.Wait()
	db.Refresh()

	t := newTable("docs", "writers", "refresh p50 µs", "refresh p95 µs", "rebuild ms", "rebuild/refresh")
	p50 := percentile(refreshLats, 0.50)
	p95 := percentile(refreshLats, 0.95)
	ratio := float64(rebuild) / float64(p50)
	t.add(n, 4, us(p50), us(p95), ms(rebuild), fmt.Sprintf("%.0fx", ratio))
	t.print()
	fs := db.Stats().Feed
	fmt.Printf("  churn: %d concurrent updates; feed usn=%d, resyncs:", wrote.Load(), fs.LastUSN)
	for _, s := range fs.Subscribers {
		fmt.Printf(" %s=%d", s.Name, s.Resyncs)
	}
	fmt.Println()
	fmt.Println("  (shape check: refresh barrier stays µs-scale under churn; rebuild pays the full scan)")
}
