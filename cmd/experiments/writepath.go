package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	domino "repro"
	"repro/internal/workload"
)

// --- W1: write-path latency vs number of open change consumers ---
//
// The changefeed claim: Put latency is independent of how many views (and
// whether a full-text index) are open, because maintenance happens on
// subscriber goroutines. The "+refresh" rows re-add the cost by placing a
// full refresh barrier after every write — the synchronous-equivalent
// configuration the old write path always paid.

// wpResult is one measured configuration, serialized to
// BENCH_writepath.json as the regression baseline.
type wpResult struct {
	Views     int     `json:"views"`
	FullText  bool    `json:"fulltext"`
	Refreshed bool    `json:"refreshed"`
	Ops       int     `json:"ops"`
	P50us     float64 `json:"p50_us"`
	P95us     float64 `json:"p95_us"`
	Meanus    float64 `json:"mean_us"`
}

// wpDB opens a database with the requested consumers attached.
func wpDB(views int, fulltext bool) *domino.Database {
	db := tempDB("w1", domino.NewReplicaID())
	for v := 0; v < views; v++ {
		def, err := domino.NewView(fmt.Sprintf("w%d", v), "SELECT @All",
			domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true},
			domino.ViewColumn{Title: "Cat", ItemName: "Category", Sorted: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AddView(nil, def); err != nil {
			log.Fatal(err)
		}
	}
	if fulltext {
		if err := db.EnableFullText(); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// measureWrites runs ops creates and returns per-op percentiles.
func measureWrites(db *domino.Database, ops int, refreshed bool, seed int64) wpResult {
	g := workload.New(seed)
	docs := g.Corpus(ops, 512)
	sess := db.Session("exp")
	lats := make([]time.Duration, 0, ops)
	var total time.Duration
	for _, n := range docs {
		start := time.Now()
		if err := sess.Create(n); err != nil {
			log.Fatal(err)
		}
		if refreshed {
			db.Refresh()
		}
		d := time.Since(start)
		lats = append(lats, d)
		total += d
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	toUs := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return wpResult{
		Refreshed: refreshed,
		Ops:       ops,
		P50us:     toUs(percentile(lats, 0.50)),
		P95us:     toUs(percentile(lats, 0.95)),
		Meanus:    toUs(total / time.Duration(ops)),
	}
}

func runW1(quick bool) {
	ops := pick(quick, 3000, 400)
	var results []wpResult
	t := newTable("views", "fulltext", "mode", "p50 µs", "p95 µs", "mean µs")
	for _, views := range []int{0, 1, 8} {
		for _, ftOn := range []bool{false, true} {
			db := wpDB(views, ftOn)
			r := measureWrites(db, ops, false, int64(100+views))
			r.Views, r.FullText = views, ftOn
			results = append(results, r)
			t.add(views, fmt.Sprint(ftOn), "async", r.P50us, r.P95us, r.Meanus)
			db.Refresh()
			db.Close()
		}
	}
	for _, views := range []int{0, 8} {
		db := wpDB(views, false)
		r := measureWrites(db, ops, true, int64(200+views))
		r.Views = views
		results = append(results, r)
		t.add(views, "false", "+refresh", r.P50us, r.P95us, r.Meanus)
		db.Close()
	}
	t.print()
	var p50v0, p50v8 float64
	for _, r := range results {
		if !r.Refreshed && !r.FullText {
			if r.Views == 0 {
				p50v0 = r.P50us
			}
			if r.Views == 8 {
				p50v8 = r.P50us
			}
		}
	}
	if p50v0 > 0 {
		fmt.Printf("  p50 ratio 8 views / 0 views = %.2fx (target: <= 1.5x)\n", p50v8/p50v0)
	}
	fmt.Println("  (shape check: async p50 flat in consumer count; +refresh pays it back)")
	f, err := os.Create("BENCH_writepath.json")
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("  baseline written to BENCH_writepath.json")
}

// --- W2: incremental view refresh vs rebuild under concurrent writers ---
//
// The T2 experiment re-run with the write load still running: readers use
// the refresh barrier (incremental catch-up) or force a full rebuild while
// writers churn documents. The feed keeps maintenance incremental; the
// resync counter shows whether the churn ever forced the rebuild fallback.

func runW2(quick bool) {
	n := pick(quick, 10000, 1000)
	db := tempDB("w2", domino.NewReplicaID())
	defer db.Close()
	g := workload.New(7)
	docs := seedDocs(db, g, n, 512)
	def, _ := domino.NewView("bycat", "SELECT @All",
		domino.ViewColumn{Title: "Category", ItemName: "Category", Sorted: true},
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err := db.AddView(nil, def); err != nil {
		log.Fatal(err)
	}

	// Background churn: 4 writers mutating documents until stopped.
	var stop atomic.Bool
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wg2 := workload.New(int64(300 + w))
			sess := db.Session(fmt.Sprintf("writer%d", w))
			for i := 0; !stop.Load(); i++ {
				d := docs[(w*1000+i)%len(docs)].Clone()
				wg2.Mutate(d)
				if err := sess.Update(d); err != nil {
					log.Fatal(err)
				}
				wrote.Add(1)
			}
		}(w)
	}

	reads := pick(quick, 200, 40)
	var refreshLats []time.Duration
	for i := 0; i < reads; i++ {
		start := time.Now()
		if _, ok := db.View("bycat"); !ok { // barrier + lookup
			log.Fatal("view lost")
		}
		refreshLats = append(refreshLats, time.Since(start))
	}
	sort.Slice(refreshLats, func(i, j int) bool { return refreshLats[i] < refreshLats[j] })

	rebuilds := 3
	start := time.Now()
	for i := 0; i < rebuilds; i++ {
		if err := db.AddView(nil, def); err != nil { // re-add forces rebuild
			log.Fatal(err)
		}
	}
	rebuild := time.Since(start) / time.Duration(rebuilds)

	stop.Store(true)
	wg.Wait()
	db.Refresh()

	t := newTable("docs", "writers", "refresh p50 µs", "refresh p95 µs", "rebuild ms", "rebuild/refresh")
	p50 := percentile(refreshLats, 0.50)
	p95 := percentile(refreshLats, 0.95)
	ratio := float64(rebuild) / float64(p50)
	t.add(n, 4, us(p50), us(p95), ms(rebuild), fmt.Sprintf("%.0fx", ratio))
	t.print()
	fs := db.Stats().Feed
	fmt.Printf("  churn: %d concurrent updates; feed usn=%d, resyncs:", wrote.Load(), fs.LastUSN)
	for _, s := range fs.Subscribers {
		fmt.Printf(" %s=%d", s.Name, s.Resyncs)
	}
	fmt.Println()
	fmt.Println("  (shape check: refresh barrier stays µs-scale under churn; rebuild pays the full scan)")
}
