// Command nsfadmin administers local NSF database files: inspect
// statistics, compact, purge deletion stubs, list views, and dump notes —
// the jobs a Domino administrator ran as server console commands.
//
// Usage:
//
//	nsfadmin stats   DB.nsf
//	nsfadmin compact DB.nsf
//	nsfadmin purge   DB.nsf -cutoff 720h
//	nsfadmin views   DB.nsf
//	nsfadmin dump    DB.nsf [-class document|view|acl|agent|all] [-stubs]
//	nsfadmin acl     DB.nsf
//	nsfadmin verify  DB.nsf
//	nsfadmin archive DB.nsf ARCHIVE.nsf [-cutoff 2160h]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	domino "repro"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: nsfadmin <stats|compact|purge|views|dump|acl|verify> DB.nsf [flags]")
		os.Exit(2)
	}
	cmd, path, rest := os.Args[1], os.Args[2], os.Args[3:]
	if _, err := os.Stat(path); err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
	db, err := domino.Open(path, domino.Options{})
	if err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
	defer db.Close()

	switch cmd {
	case "stats":
		err = cmdStats(db)
	case "compact":
		err = cmdCompact(db)
	case "purge":
		err = cmdPurge(db, rest)
	case "views":
		err = cmdViews(db)
	case "dump":
		err = cmdDump(db, rest)
	case "acl":
		err = cmdACL(db)
	case "verify":
		err = cmdVerify(db)
	case "archive":
		err = cmdArchive(db, rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
}

func cmdStats(db *domino.Database) error {
	st := db.Stats()
	counts := make(map[string]int)
	stubs := 0
	db.ScanAll(func(n *domino.Note) bool {
		if n.IsStub() {
			stubs++
		} else {
			counts[n.Class.String()]++
		}
		return true
	})
	fmt.Printf("title:       %s\n", db.Title())
	fmt.Printf("replica id:  %s\n", db.ReplicaID())
	fmt.Printf("notes:       %d (%d stubs)\n", st.Notes, stubs)
	for class, n := range counts {
		fmt.Printf("  %-10s %d\n", class, n)
	}
	fmt.Printf("pages:       %d (%d KiB file)\n", st.Pages, st.Pages*4)
	fmt.Printf("dirty pages: %d\n", st.DirtyPages)
	fmt.Printf("wal bytes:   %d\n", st.WALBytes)
	fmt.Printf("views:       %v\n", db.ViewNames())
	return nil
}

func cmdCompact(db *domino.Database) error {
	before := db.Stats().Pages
	freed, err := db.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("compacted: %d pages -> %d pages (%d reclaimed, %d KiB)\n",
		before, db.Stats().Pages, freed, freed*4)
	return nil
}

func cmdPurge(db *domino.Database, args []string) error {
	fs := flag.NewFlagSet("purge", flag.ExitOnError)
	cutoff := fs.Duration("cutoff", 90*24*time.Hour, "purge stubs older than this")
	fs.Parse(args)
	limit := domino.Timestamp(time.Now().Add(-*cutoff).UnixNano())
	purged, err := db.PurgeStubs(limit)
	if err != nil {
		return err
	}
	fmt.Printf("purged %d deletion stubs older than %s\n", purged, cutoff)
	return nil
}

func cmdViews(db *domino.Database) error {
	for _, name := range db.ViewNames() {
		ix, _ := db.View(name)
		def := ix.Definition()
		fmt.Printf("%s  (%d entries)\n", name, ix.Len())
		fmt.Printf("  selection: %s\n", def.Selection.Source())
		for _, c := range def.Columns {
			kind := "item " + c.ItemName
			if c.ItemName == "" {
				kind = "formula " + c.Formula.Source()
			}
			attrs := ""
			if c.Sorted {
				attrs += " sorted"
			}
			if c.Descending {
				attrs += " desc"
			}
			if c.Categorized {
				attrs += " categorized"
			}
			fmt.Printf("  column %-16q %s%s\n", c.Title, kind, attrs)
		}
	}
	return nil
}

func cmdDump(db *domino.Database, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	class := fs.String("class", "document", "note class filter (document|view|acl|agent|all)")
	stubs := fs.Bool("stubs", false, "include deletion stubs")
	fs.Parse(args)
	count := 0
	err := db.ScanAll(func(n *domino.Note) bool {
		if n.IsStub() && !*stubs {
			return true
		}
		if *class != "all" && n.Class.String() != *class {
			return true
		}
		count++
		marker := ""
		if n.IsStub() {
			marker = " [STUB]"
		}
		if n.IsConflict() {
			marker += " [CONFLICT]"
		}
		fmt.Printf("note %d  unid %s  seq %d @ %s%s\n",
			n.ID, n.OID.UNID, n.OID.Seq, n.OID.SeqTime, marker)
		for _, it := range n.Items {
			fmt.Printf("  %-20s (%s) = %s\n", it.Name, it.Value.Type, it.Value.String())
		}
		return true
	})
	fmt.Printf("%d notes\n", count)
	return err
}

func cmdVerify(db *domino.Database) error {
	problems := db.Verify()
	if len(problems) == 0 {
		fmt.Println("database is consistent")
		return nil
	}
	for _, p := range problems {
		fmt.Println("PROBLEM:", p)
	}
	return fmt.Errorf("%d problems found", len(problems))
}

func cmdArchive(db *domino.Database, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("archive: destination database path required")
	}
	dstPath, rest := args[0], args[1:]
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	cutoff := fs.Duration("cutoff", 90*24*time.Hour, "archive documents older than this")
	fs.Parse(rest)
	dst, err := domino.Open(dstPath, domino.Options{Title: db.Title() + " (archive)"})
	if err != nil {
		return err
	}
	defer dst.Close()
	limit := domino.Timestamp(time.Now().Add(-*cutoff).UnixNano())
	stats, err := db.ArchiveTo(dst, limit)
	if err != nil {
		return err
	}
	fmt.Printf("archived %d documents (%d already present) older than %s into %s\n",
		stats.Moved, stats.Skipped, cutoff, dstPath)
	return nil
}

func cmdACL(db *domino.Database) error {
	a := db.ACL()
	fmt.Printf("default: %s\n", a.Default())
	for _, e := range a.Entries() {
		fmt.Printf("%-24s %-10s %v\n", e.Name, e.Level, e.Roles)
	}
	return nil
}
