// Command nsfadmin administers local NSF database files: inspect
// statistics, compact, purge deletion stubs, list views, and dump notes —
// the jobs a Domino administrator ran as server console commands.
//
// Usage:
//
//	nsfadmin stats   DB.nsf
//	nsfadmin compact DB.nsf
//	nsfadmin purge   DB.nsf -cutoff 720h
//	nsfadmin views   DB.nsf
//	nsfadmin dump    DB.nsf [-class document|view|acl|agent|all] [-stubs]
//	nsfadmin acl     DB.nsf
//	nsfadmin verify  DB.nsf
//	nsfadmin archive DB.nsf ARCHIVE.nsf [-cutoff 2160h]
//	nsfadmin backup  DB.nsf SETDIR [-incremental]
//	nsfadmin restore SETDIR TARGET.nsf [-usn N] [-archive DIR]
//	nsfadmin verifybackup SETDIR [-archive DIR]
//	nsfadmin placement list HOST:PORT
//	nsfadmin placement resolve HOST:PORT DB.nsf
//	nsfadmin placement move SRC.nsf TARGET.nsf [-root DIR]
//	nsfadmin mesh list   HOST:PORT [-user U -secret S]
//	nsfadmin mesh status HOST:PORT [-user U -secret S]
//	nsfadmin mesh add    HOST:PORT [-user U -secret S] NAME PEER GLOB hot|cold INTERVAL pull|push|both [FORMULA...]
//	nsfadmin mesh rm     HOST:PORT [-user U -secret S] NAME
//	nsfadmin export HOST:PORT DB.nsf [-user U -secret S] [-formula F] [-columns A,B]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	domino "repro"
	"repro/internal/mesh"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: nsfadmin <stats|compact|purge|views|dump|acl|verify|archive|backup|restore|verifybackup|placement|mesh> DB.nsf [flags]")
		os.Exit(2)
	}
	cmd, path, rest := os.Args[1], os.Args[2], os.Args[3:]
	// restore and verifybackup operate on a backup set, not an open
	// database (restore's target must not even exist yet).
	switch cmd {
	case "restore":
		if err := cmdRestore(path, rest); err != nil {
			log.Fatalf("nsfadmin: %v", err)
		}
		return
	case "verifybackup":
		if err := cmdVerifyBackup(path, rest); err != nil {
			log.Fatalf("nsfadmin: %v", err)
		}
		return
	case "placement":
		if err := cmdPlacement(path, rest); err != nil {
			log.Fatalf("nsfadmin: %v", err)
		}
		return
	case "mesh":
		if err := cmdMesh(path, rest); err != nil {
			log.Fatalf("nsfadmin: %v", err)
		}
		return
	case "export":
		if err := cmdExport(path, rest); err != nil {
			log.Fatalf("nsfadmin: %v", err)
		}
		return
	}
	if _, err := os.Stat(path); err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
	db, err := domino.Open(path, domino.Options{})
	if err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
	defer db.Close()

	switch cmd {
	case "stats":
		err = cmdStats(db)
	case "compact":
		err = cmdCompact(db)
	case "purge":
		err = cmdPurge(db, rest)
	case "views":
		err = cmdViews(db)
	case "dump":
		err = cmdDump(db, rest)
	case "acl":
		err = cmdACL(db)
	case "verify":
		err = cmdVerify(db)
	case "archive":
		err = cmdArchive(db, rest)
	case "backup":
		err = cmdBackup(db, rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatalf("nsfadmin: %v", err)
	}
}

func cmdStats(db *domino.Database) error {
	st := db.Stats()
	counts := make(map[string]int)
	stubs := 0
	db.ScanAll(func(n *domino.Note) bool {
		if n.IsStub() {
			stubs++
		} else {
			counts[n.Class.String()]++
		}
		return true
	})
	fmt.Printf("title:       %s\n", db.Title())
	fmt.Printf("replica id:  %s\n", db.ReplicaID())
	fmt.Printf("notes:       %d (%d stubs)\n", st.Notes, stubs)
	for class, n := range counts {
		fmt.Printf("  %-10s %d\n", class, n)
	}
	fmt.Printf("pages:       %d (%d KiB file)\n", st.Pages, st.Pages*4)
	fmt.Printf("dirty pages: %d\n", st.DirtyPages)
	fmt.Printf("wal bytes:   %d\n", st.WALBytes)
	fmt.Printf("views:       %v\n", db.ViewNames())
	return nil
}

func cmdCompact(db *domino.Database) error {
	before := db.Stats().Pages
	freed, err := db.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("compacted: %d pages -> %d pages (%d reclaimed, %d KiB)\n",
		before, db.Stats().Pages, freed, freed*4)
	return nil
}

func cmdPurge(db *domino.Database, args []string) error {
	fs := flag.NewFlagSet("purge", flag.ExitOnError)
	cutoff := fs.Duration("cutoff", 90*24*time.Hour, "purge stubs older than this")
	fs.Parse(args)
	limit := domino.Timestamp(time.Now().Add(-*cutoff).UnixNano())
	purged, err := db.PurgeStubs(limit)
	if err != nil {
		return err
	}
	fmt.Printf("purged %d deletion stubs older than %s\n", purged, cutoff)
	return nil
}

func cmdViews(db *domino.Database) error {
	for _, name := range db.ViewNames() {
		ix, _ := db.View(name)
		def := ix.Definition()
		fmt.Printf("%s  (%d entries)\n", name, ix.Len())
		fmt.Printf("  selection: %s\n", def.Selection.Source())
		for _, c := range def.Columns {
			kind := "item " + c.ItemName
			if c.ItemName == "" {
				kind = "formula " + c.Formula.Source()
			}
			attrs := ""
			if c.Sorted {
				attrs += " sorted"
			}
			if c.Descending {
				attrs += " desc"
			}
			if c.Categorized {
				attrs += " categorized"
			}
			fmt.Printf("  column %-16q %s%s\n", c.Title, kind, attrs)
		}
	}
	return nil
}

func cmdDump(db *domino.Database, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	class := fs.String("class", "document", "note class filter (document|view|acl|agent|all)")
	stubs := fs.Bool("stubs", false, "include deletion stubs")
	fs.Parse(args)
	count := 0
	err := db.ScanAll(func(n *domino.Note) bool {
		if n.IsStub() && !*stubs {
			return true
		}
		if *class != "all" && n.Class.String() != *class {
			return true
		}
		count++
		marker := ""
		if n.IsSelStub() {
			marker = " [SELSTUB]"
		} else if n.IsStub() {
			marker = " [STUB]"
		}
		if n.IsConflict() {
			marker += " [CONFLICT]"
		}
		fmt.Printf("note %d  unid %s  seq %d @ %s%s\n",
			n.ID, n.OID.UNID, n.OID.Seq, n.OID.SeqTime, marker)
		for _, it := range n.Items {
			fmt.Printf("  %-20s (%s) = %s\n", it.Name, it.Value.Type, it.Value.String())
		}
		return true
	})
	fmt.Printf("%d notes\n", count)
	return err
}

func cmdVerify(db *domino.Database) error {
	problems := db.Verify()
	if len(problems) == 0 {
		fmt.Println("database is consistent")
		return nil
	}
	for _, p := range problems {
		fmt.Println("PROBLEM:", p)
	}
	return fmt.Errorf("%d problems found", len(problems))
}

func cmdArchive(db *domino.Database, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("archive: destination database path required")
	}
	dstPath, rest := args[0], args[1:]
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	cutoff := fs.Duration("cutoff", 90*24*time.Hour, "archive documents older than this")
	fs.Parse(rest)
	dst, err := domino.Open(dstPath, domino.Options{Title: db.Title() + " (archive)"})
	if err != nil {
		return err
	}
	defer dst.Close()
	limit := domino.Timestamp(time.Now().Add(-*cutoff).UnixNano())
	stats, err := db.ArchiveTo(dst, limit)
	if err != nil {
		return err
	}
	fmt.Printf("archived %d documents (%d already present) older than %s into %s\n",
		stats.Moved, stats.Skipped, cutoff, dstPath)
	return nil
}

func cmdBackup(db *domino.Database, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("backup: backup set directory required")
	}
	setDir, rest := args[0], args[1:]
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	incremental := fs.Bool("incremental", false,
		"append an incremental image (changes since the set's newest image) instead of a full one")
	fs.Parse(rest)
	var (
		img domino.BackupImage
		err error
	)
	if *incremental {
		img, err = db.BackupIncremental(setDir)
	} else {
		img, err = db.Backup(setDir)
	}
	if err != nil {
		return err
	}
	kind := "full"
	if img.Kind == domino.BackupKindIncremental {
		kind = "incremental"
	}
	fmt.Printf("%s image seq %d: USN %d..%d, %d bytes -> %s\n",
		kind, img.Seq, img.BaseUSN, img.EndUSN, img.Size, img.Path)
	return nil
}

func cmdRestore(setDir string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("restore: target database path required")
	}
	target, rest := args[0], args[1:]
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	usn := fs.Uint64("usn", 0, "point-in-time recovery target USN (0 = everything available)")
	archive := fs.String("archive", "", "archived WAL segment directory for roll-forward")
	fs.Parse(rest)
	db, info, err := domino.RestoreDatabase(setDir, target,
		domino.RestoreOptions{TargetUSN: *usn, ArchiveDir: *archive}, domino.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("restored %s through USN %d (%d images, %d notes from incrementals, %d archived records)\n",
		target, info.ReachedUSN, info.Images, info.Notes, info.ArchiveRecords)
	fmt.Printf("title: %s  replica id: %s  notes: %d\n", db.Title(), db.ReplicaID(), db.Count())
	return nil
}

func cmdVerifyBackup(setDir string, args []string) error {
	fs := flag.NewFlagSet("verifybackup", flag.ExitOnError)
	archive := fs.String("archive", "", "also verify this archived WAL segment directory")
	fs.Parse(args)
	r, err := domino.VerifyBackupSet(setDir, *archive)
	if err != nil {
		return err
	}
	fmt.Printf("checked %d images (%d incremental notes), %d archive segments (%d records)\n",
		r.Images, r.Notes, r.Segments, r.ArchiveRecords)
	if r.OK() {
		fmt.Println("backup set is sound")
		return nil
	}
	for _, p := range r.Problems {
		fmt.Println("PROBLEM:", p)
	}
	return fmt.Errorf("%d problems found", len(r.Problems))
}

// cmdPlacement administers the partitioned namespace. list and resolve use
// the unauthenticated resolve probe against a running mate (answered even
// while it drains); move is the offline image move — snapshot a source file
// into a backup set and materialize it at the target path — for relocating
// a database between data directories when the servers are down. Live moves
// belong to the running cluster (dominod's rebalancer / MoveDatabase).
func cmdPlacement(sub string, args []string) error {
	switch sub {
	case "list":
		if len(args) < 1 {
			return fmt.Errorf("placement list: server address required")
		}
		records, err := domino.ListPlacements(args[0], 5*time.Second)
		if err != nil {
			return err
		}
		if len(records) == 0 {
			fmt.Println("no placement records (all databases served by every mate)")
			return nil
		}
		for _, rec := range records {
			fmt.Println(formatPlacement(rec))
		}
		return nil
	case "resolve":
		if len(args) < 2 {
			return fmt.Errorf("placement resolve: server address and database path required")
		}
		rec, err := domino.ResolvePlacement(args[0], args[1], 5*time.Second)
		if err != nil {
			return err
		}
		if rec.Unplaced() {
			fmt.Printf("%-24s unplaced (served by every mate)\n", args[1])
			return nil
		}
		fmt.Println(formatPlacement(rec))
		return nil
	case "move":
		if len(args) < 2 {
			return fmt.Errorf("placement move: source and target database paths required")
		}
		src, target, rest := args[0], args[1], args[2:]
		fs := flag.NewFlagSet("placement move", flag.ExitOnError)
		root := fs.String("root", "", "backup-set directory to stage the image in (default: alongside the target)")
		fs.Parse(rest)
		setDir := *root
		if setDir == "" {
			setDir = target + ".move.bak"
		}
		db, err := domino.Open(src, domino.Options{})
		if err != nil {
			return err
		}
		img, err := db.Backup(setDir)
		if cerr := db.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		moved, info, err := domino.RestoreDatabase(setDir, target, domino.RestoreOptions{}, domino.Options{})
		if err != nil {
			return err
		}
		defer moved.Close()
		fmt.Printf("imaged %s (USN %d, %d bytes) -> %s (%d notes through USN %d)\n",
			src, img.EndUSN, img.Size, target, moved.Count(), info.ReachedUSN)
		fmt.Println("source left in place; update the directory placement record before serving the copy")
		return nil
	default:
		return fmt.Errorf("unknown placement subcommand %q (want list, resolve, or move)", sub)
	}
}

// cmdMesh administers a running server's replication mesh over the wire:
// list/status read the link table with live counters, add validates and
// starts a new link (the server compiles its selection formula before
// accepting it), rm stops one. Mesh changes need an authenticated session,
// so these take -user/-secret (before the positional link arguments).
func cmdMesh(sub string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("mesh %s: server address required", sub)
	}
	addr, rest := args[0], args[1:]
	fs := flag.NewFlagSet("mesh "+sub, flag.ExitOnError)
	user := fs.String("user", "admin", "user to authenticate as")
	secret := fs.String("secret", "", "the user's secret")
	budget := fs.Duration("budget", 0, "per-operation deadline budget (0 = none)")
	fs.Parse(rest)
	c, err := domino.DialOptions(addr, *user, *secret, domino.ClientOptions{OpBudget: *budget})
	if err != nil {
		return err
	}
	defer c.Close()
	switch sub {
	case "list", "status":
		sts, err := c.MeshStatus()
		if err != nil {
			return err
		}
		if len(sts) == 0 {
			fmt.Println("no mesh links configured")
			return nil
		}
		for _, st := range sts {
			if sub == "list" {
				fmt.Println(formatMeshLink(st.Link))
				continue
			}
			line := fmt.Sprintf("%s rounds=%d fail=%d skipped=%d in=%d out=%d lag=%s",
				formatMeshLink(st.Link), st.Rounds, st.Failures, st.SkippedDBs,
				st.NotesIn, st.NotesOut, st.Lag.Round(time.Millisecond))
			if st.BreakerOpen {
				line += " BREAKER-OPEN"
			}
			if st.Note != "" {
				line += " (" + st.Note + ")"
			}
			fmt.Println(line)
		}
		return nil
	case "add":
		pos := fs.Args()
		if len(pos) < 6 {
			return fmt.Errorf("mesh add: want NAME PEER GLOB hot|cold INTERVAL pull|push|both [FORMULA...]")
		}
		class, err := mesh.ParseClass(pos[3])
		if err != nil {
			return err
		}
		interval, err := time.ParseDuration(pos[4])
		if err != nil {
			return err
		}
		dir, err := mesh.ParseDirection(pos[5])
		if err != nil {
			return err
		}
		l := domino.MeshLink{
			Name:      pos[0],
			Peer:      pos[1],
			Glob:      pos[2],
			Formula:   strings.Join(pos[6:], " "),
			Direction: dir,
			Class:     class,
			Interval:  interval,
		}
		if err := c.MeshAdd(l); err != nil {
			return err
		}
		fmt.Printf("added %s\n", formatMeshLink(l))
		return nil
	case "rm":
		pos := fs.Args()
		if len(pos) != 1 {
			return fmt.Errorf("mesh rm: want exactly one link name")
		}
		if err := c.MeshRemove(pos[0]); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", pos[0])
		return nil
	default:
		return fmt.Errorf("unknown mesh subcommand %q (want list, status, add, or rm)", sub)
	}
}

func formatMeshLink(l domino.MeshLink) string {
	s := fmt.Sprintf("%-12s -> %-10s %s %s glob=%q every %s",
		l.Name, l.Peer, l.Class, l.Direction, l.Glob, l.Interval)
	if l.Formula != "" {
		s += fmt.Sprintf(" select %q", l.Formula)
	}
	return s
}

func formatPlacement(rec domino.ResolveInfo) string {
	homes := make([]string, 0, len(rec.Homes))
	for _, h := range rec.Homes {
		if h.Addr != "" {
			homes = append(homes, h.Name+"="+h.Addr)
		} else {
			homes = append(homes, h.Name)
		}
	}
	return fmt.Sprintf("%-24s gen=%-4d replicas=%d home=%s",
		rec.Path, rec.Generation, rec.Replicas, strings.Join(homes, ","))
}

func cmdACL(db *domino.Database) error {
	a := db.ACL()
	fmt.Printf("default: %s\n", a.Default())
	for _, e := range a.Entries() {
		fmt.Printf("%-24s %-10s %v\n", e.Name, e.Level, e.Roles)
	}
	return nil
}

// cmdExport streams a remote database over the paginated bulk scan: every
// document the user may read (optionally formula-filtered), one line per
// document with the projected items. Paging keeps every response frame
// bounded, so exporting works on databases of any size.
func cmdExport(addr string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("export: database path required")
	}
	dbPath, rest := args[0], args[1:]
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	user := fs.String("user", "admin", "user to authenticate as")
	secret := fs.String("secret", "", "the user's secret")
	formulaSrc := fs.String("formula", "", "selection formula (empty exports all)")
	columns := fs.String("columns", "", "comma-separated items to project")
	budget := fs.Duration("budget", 0, "per-page deadline budget (0 = none)")
	fs.Parse(rest)
	c, err := domino.DialOptions(addr, *user, *secret, domino.ClientOptions{OpBudget: *budget})
	if err != nil {
		return err
	}
	defer c.Close()
	db, err := c.OpenDB(dbPath)
	if err != nil {
		return err
	}
	opts := domino.ScanOptions{Formula: *formulaSrc}
	if *columns != "" {
		opts.Columns = strings.Split(*columns, ",")
	}
	count := 0
	err = db.Scan(opts, func(row domino.ScanRow) bool {
		fmt.Printf("%s", row.UNID)
		for i, v := range row.Values {
			if v.Type == 0 {
				continue
			}
			fmt.Printf("\t%s=%s", opts.Columns[i], v.String())
		}
		fmt.Println()
		count++
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d documents\n", count)
	return nil
}
