// Ablation benchmarks: quantify the design choices DESIGN.md §5 calls out
// by toggling them — checkpoint cadence, per-op WAL fsync, the summary
// phase of replication, and field-level merge.
package domino_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	domino "repro"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/workload"
)

// BenchmarkAblationCheckpointInterval sweeps the auto-checkpoint cadence:
// frequent checkpoints bound recovery time but tax every Nth write with a
// full page flush.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, every := range []int{256, 2048, 16384, -1} {
		name := fmt.Sprint(every)
		if every < 0 {
			name = "never"
		}
		b.Run("every="+name, func(b *testing.B) {
			db, err := domino.Open(filepath.Join(b.TempDir(), "a.nsf"), domino.Options{
				Store: store.Options{CheckpointEvery: every},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			g := workload.New(20)
			sess := db.Session("bench")
			docs := g.Corpus(b.N, 512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Create(docs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWALSync compares default (buffered) WAL writes against
// fsync-per-operation durability.
func BenchmarkAblationWALSync(b *testing.B) {
	for _, sync := range []bool{false, true} {
		b.Run(fmt.Sprintf("fsync=%v", sync), func(b *testing.B) {
			db, err := domino.Open(filepath.Join(b.TempDir(), "a.nsf"), domino.Options{
				Store: store.Options{SyncWAL: sync},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			g := workload.New(21)
			sess := db.Session("bench")
			docs := g.Corpus(b.N, 512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Create(docs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSummaryPhase isolates the value of the cheap summary
// exchange: incremental replication of an unchanged 2000-doc pair versus
// the full-copy baseline that refetches everything.
func BenchmarkAblationSummaryPhase(b *testing.B) {
	setup := func(b *testing.B) (*domino.Database, *domino.Database) {
		replica := domino.NewReplicaID()
		a, err := domino.Open(filepath.Join(b.TempDir(), "a.nsf"), domino.Options{ReplicaID: replica})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { a.Close() })
		c, err := domino.Open(filepath.Join(b.TempDir(), "c.nsf"), domino.Options{ReplicaID: replica})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		g := workload.New(22)
		sess := a.Session("bench")
		for _, n := range g.Corpus(2000, 512) {
			if err := sess.Create(n); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := domino.Replicate(c, &domino.LocalPeer{DB: a},
			domino.ReplicationOptions{PeerName: "a"}); err != nil {
			b.Fatal(err)
		}
		return a, c
	}
	b.Run("with-summaries", func(b *testing.B) {
		a, c := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := domino.Replicate(c, &domino.LocalPeer{DB: a},
				domino.ReplicationOptions{PeerName: "a"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-copy", func(b *testing.B) {
		a, c := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := repl.FullCopy(c, &repl.LocalPeer{DB: a}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFTPersistence compares enabling full-text on a database
// cold (tokenize everything) versus warm (load the sidecar snapshot and
// catch up) — the payoff of persisting the index.
func BenchmarkAblationFTPersistence(b *testing.B) {
	setup := func(b *testing.B, warm bool) string {
		path := filepath.Join(b.TempDir(), "ft.nsf")
		db, err := domino.Open(path, domino.Options{})
		if err != nil {
			b.Fatal(err)
		}
		g := workload.New(24)
		sess := db.Session("bench")
		for _, n := range g.Corpus(10000, 512) {
			if err := sess.Create(n); err != nil {
				b.Fatal(err)
			}
		}
		if warm {
			if err := db.EnableFullText(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil { // writes the sidecar when enabled
			b.Fatal(err)
		}
		return path
	}
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold-rebuild", false}, {"warm-sidecar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			path := setup(b, mode.warm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := domino.Open(path, domino.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := db.EnableFullText(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db.Close() // writes the sidecar
				if !mode.warm {
					// Cold mode must start every iteration without one.
					os.Remove(path + ".ft")
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationCacheCap sweeps the buffer pool size against a working
// set that does not fit the smallest setting.
func BenchmarkAblationCacheCap(b *testing.B) {
	for _, capPages := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("pages=%d", capPages), func(b *testing.B) {
			db, err := domino.Open(filepath.Join(b.TempDir(), "a.nsf"), domino.Options{
				Store: store.Options{CacheCap: capPages, CheckpointEvery: 512},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			g := workload.New(23)
			sess := db.Session("bench")
			docs := g.Corpus(3000, 512)
			for _, n := range docs {
				if err := sess.Create(n); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Get(docs[(i*37)%len(docs)].OID.UNID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
