package domino_test

import (
	"errors"
	"path/filepath"
	"testing"

	domino "repro"
)

// TestPublicAPIEndToEnd walks the whole public surface the README promises:
// database lifecycle, sessions and ACLs, views (sorted, categorized,
// threaded), full-text search, folders, profiles, unread marks, agents,
// signing, attachments, replication with conflict handling, and compaction.
func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", Secret: "pw"})
	d.AddUser(domino.User{Name: "bob", Secret: "pw"})
	d.AddGroup("team", "ada", "bob")

	replica := domino.NewReplicaID()
	db, err := domino.Open(filepath.Join(dir, "main.nsf"), domino.Options{
		Title: "Public API", ReplicaID: replica, Directory: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.ACL().Set("team", domino.Designer)
	db.ACL().SetDefault(domino.NoAccess)
	if err := db.SaveACL(nil); err != nil {
		t.Fatal(err)
	}

	ada := db.Session("ada")

	// Documents with attachments and a signature.
	doc := domino.NewDocument()
	doc.SetText("Form", "Report")
	doc.SetText("Subject", "quarterly numbers")
	doc.SetNumber("Quarter", 3)
	if err := doc.Attach("numbers.csv", []byte("q,revenue\n3,100")); err != nil {
		t.Fatal(err)
	}
	if err := ada.Sign(doc); err != nil {
		t.Fatal(err)
	}
	if err := ada.Create(doc); err != nil {
		t.Fatal(err)
	}
	if signer, err := db.VerifySignature(doc); err != nil || signer != "ada" {
		t.Fatalf("signature: %q %v", signer, err)
	}

	// A response, for the threaded view.
	reply := domino.NewDocument()
	reply.SetText("Form", "Comment")
	reply.SetText("Subject", "re: quarterly numbers")
	reply.SetText("$Ref", doc.OID.UNID.String())
	if err := ada.Create(reply); err != nil {
		t.Fatal(err)
	}

	// Views: sorted + threaded.
	threaded, err := domino.NewView("threads", "SELECT @All",
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	threaded.ShowResponses = true
	if err := db.AddView(ada, threaded); err != nil {
		t.Fatal(err)
	}
	rows, err := ada.Rows("threads")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Indent != 1 {
		t.Fatalf("threaded rows = %+v", rows)
	}

	// Full-text search.
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	hits, err := ada.Search("quarterly")
	if err != nil || len(hits) != 2 {
		t.Fatalf("search: %d hits, %v", len(hits), err)
	}

	// Folders and profiles.
	if err := db.CreateFolder(ada, "important"); err != nil {
		t.Fatal(err)
	}
	if err := ada.AddToFolder("important", doc.OID.UNID); err != nil {
		t.Fatal(err)
	}
	contents, _ := ada.FolderContents("important")
	if len(contents) != 1 {
		t.Fatalf("folder contents = %d", len(contents))
	}
	prof, err := ada.Profile("prefs", "ada")
	if err != nil {
		t.Fatal(err)
	}
	prof.SetText("Theme", "dark")
	if err := ada.SaveProfile(prof); err != nil {
		t.Fatal(err)
	}

	// Unread marks.
	if !ada.IsUnread(doc.OID.UNID) {
		t.Error("fresh doc not unread")
	}
	if err := ada.MarkRead(doc.OID.UNID); err != nil {
		t.Fatal(err)
	}
	if ada.IsUnread(doc.OID.UNID) {
		t.Error("read doc still unread")
	}

	// Agents.
	mgr, err := domino.NewAgentManager(db)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := domino.NewAgent("tagger", "ada", domino.AgentOnInvoke,
		`SELECT Form = "Report"`, `FIELD Tagged := "yes"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Add(agent); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run("tagger"); err != nil {
		t.Fatal(err)
	}
	got, _ := ada.Get(doc.OID.UNID)
	if got.Text("Tagged") != "yes" {
		t.Error("agent did not run")
	}

	// Replication to a second replica, then a concurrent-edit conflict.
	db2, err := domino.Open(filepath.Join(dir, "replica.nsf"), domino.Options{
		ReplicaID: replica, Directory: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	opts := domino.ReplicationOptions{PeerName: "main", Apply: domino.ApplyOptions{FieldMerge: true}}
	if _, err := domino.Replicate(db2, &domino.LocalPeer{DB: db}, opts); err != nil {
		t.Fatal(err)
	}
	bob := db2.Session("bob")
	if _, err := bob.Get(doc.OID.UNID); err != nil {
		t.Fatalf("replicated doc unreadable at replica: %v", err)
	}
	// Disjoint concurrent edits merge silently.
	a1, _ := db.Session("ada").Get(doc.OID.UNID)
	a1.SetText("Status", "final")
	db.Session("ada").Update(a1)
	b1, _ := bob.Get(doc.OID.UNID)
	b1.SetNumber("Reviewed", 1)
	bob.Update(b1)
	st, err := domino.Replicate(db2, &domino.LocalPeer{DB: db, Opts: opts.Apply}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pull.Merged+st.Push.Merged == 0 {
		t.Errorf("disjoint edits did not merge: %v", st)
	}
	merged, _ := bob.Get(doc.OID.UNID)
	if merged.Text("Status") != "final" || merged.Number("Reviewed") != 1 {
		t.Errorf("merge lost items: %v", merged.ItemNames())
	}

	// Deletion stubs replicate; compaction keeps everything working.
	if err := bob.Delete(reply.OID.UNID); err != nil {
		t.Fatal(err)
	}
	if _, err := domino.Replicate(db2, &domino.LocalPeer{DB: db, Opts: opts.Apply}, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := ada.Get(reply.OID.UNID); !errors.Is(err, domino.ErrNotFound) {
		t.Errorf("delete did not replicate: %v", err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := ada.Get(doc.OID.UNID); err != nil {
		t.Errorf("doc lost after compaction: %v", err)
	}
	data, ok := got.Attachment("numbers.csv")
	if !ok || len(data) == 0 {
		t.Error("attachment lost")
	}
	// ACL still enforced at the end of all this.
	if _, err := db.Session("stranger").Get(doc.OID.UNID); !errors.Is(err, domino.ErrAccessDenied) {
		t.Errorf("stranger read doc: %v", err)
	}
}
