// Benchmark harness regenerating the experiment suite from DESIGN.md §3.
// Each Benchmark function is one table/figure series; cmd/experiments
// renders the same measurements as the tables recorded in EXPERIMENTS.md.
package domino_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	domino "repro"
	"repro/internal/ft"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/store"
	"repro/internal/workload"
)

// storeNoCheckpoint disables automatic checkpoints so a reopen replays the
// whole WAL (the simulated-crash configuration for T4).
func storeNoCheckpoint() store.Options { return store.Options{CheckpointEvery: -1} }

func openBench(b *testing.B, replica domino.ReplicaID) *domino.Database {
	b.Helper()
	db, err := domino.Open(filepath.Join(b.TempDir(), "bench.nsf"),
		domino.Options{Title: "bench", ReplicaID: replica})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func seed(b *testing.B, db *domino.Database, count, bodyBytes int) []*domino.Note {
	b.Helper()
	g := workload.New(1)
	sess := db.Session("bench")
	docs := g.Corpus(count, bodyBytes)
	for _, n := range docs {
		if err := sess.Create(n); err != nil {
			b.Fatal(err)
		}
	}
	return docs
}

// --- T1: note CRUD throughput vs document size ---

func BenchmarkT1Create(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("body=%dB", size), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			g := workload.New(2)
			docs := g.Corpus(b.N, size)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Create(docs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT1Read(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("body=%dB", size), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			docs := seed(b, db, 1000, size)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Get(docs[i%len(docs)].OID.UNID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT1Update(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("body=%dB", size), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			docs := seed(b, db, 1000, size)
			g := workload.New(3)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := docs[i%len(docs)]
				g.Mutate(n)
				if err := sess.Update(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT1Delete(b *testing.B) {
	db := openBench(b, domino.NewReplicaID())
	docs := seed(b, db, b.N, 512)
	sess := db.Session("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Delete(docs[i].OID.UNID); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: incremental view update vs full rebuild ---

func viewedDB(b *testing.B, n int) (*domino.Database, []*domino.Note) {
	db := openBench(b, domino.NewReplicaID())
	docs := seed(b, db, n, 512)
	def, err := domino.NewView("bycat", "SELECT @All",
		domino.ViewColumn{Title: "Category", ItemName: "Category", Sorted: true},
		domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.AddView(nil, def); err != nil {
		b.Fatal(err)
	}
	return db, docs
}

func BenchmarkT2ViewIncremental(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			db, docs := viewedDB(b, n)
			g := workload.New(4)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := docs[i%len(docs)]
				g.Mutate(d)
				if err := sess.Update(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2ViewRebuild(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			db, _ := viewedDB(b, n)
			ix, _ := db.View("bycat")
			_ = ix
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Re-register the view, forcing a rebuild from the store.
				def := ix.Definition()
				if err := db.AddView(nil, def); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F1: incremental replication vs full copy at varying deltas ---

func replicatedPair(b *testing.B, corpus int) (*domino.Database, *domino.Database, []*domino.Note) {
	replica := domino.NewReplicaID()
	a := openBench(b, replica)
	c, err := domino.Open(filepath.Join(b.TempDir(), "b.nsf"),
		domino.Options{Title: "b", ReplicaID: replica})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	docs := seed(b, a, corpus, 512)
	if _, err := domino.Replicate(c, &domino.LocalPeer{DB: a},
		domino.ReplicationOptions{PeerName: "a"}); err != nil {
		b.Fatal(err)
	}
	return a, c, docs
}

func BenchmarkF1ReplicationIncremental(b *testing.B) {
	const corpus = 2000
	for _, pct := range []int{1, 10, 50, 100} {
		b.Run(fmt.Sprintf("delta=%d%%", pct), func(b *testing.B) {
			a, c, docs := replicatedPair(b, corpus)
			g := workload.New(5)
			sess := a.Session("bench")
			delta := corpus * pct / 100
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < delta; j++ {
					d := docs[(i*delta+j)%len(docs)]
					g.Mutate(d)
					if err := sess.Update(d); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := domino.Replicate(c, &domino.LocalPeer{DB: a},
					domino.ReplicationOptions{PeerName: "a"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkF1ReplicationFullCopy(b *testing.B) {
	const corpus = 2000
	a, c, _ := replicatedPair(b, corpus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repl.FullCopy(c, &repl.LocalPeer{DB: a}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: conflict detection and resolution throughput ---

func BenchmarkF2ConflictApply(b *testing.B) {
	for _, mode := range []struct {
		name  string
		merge bool
	}{{"conflictdocs", false}, {"fieldmerge", true}} {
		b.Run(mode.name, func(b *testing.B) {
			replica := domino.NewReplicaID()
			a := openBench(b, replica)
			docs := seed(b, a, 1000, 512)
			sess := a.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Build a synthetic concurrent edit: same seq, later time,
				// touching a disjoint item (mergeable) to exercise the
				// conflict path end to end.
				local := docs[i%len(docs)]
				remote := local.Clone()
				remote.SetText("RemoteItem", fmt.Sprint(i))
				for k := range remote.Items {
					if remote.Items[k].Name == "RemoteItem" {
						remote.Items[k].Rev = remote.OID.Seq
					}
				}
				remote.OID.SeqTime = a.Clock().Now()
				if _, err := repl.ApplyNote(a, remote, repl.ApplyOptions{FieldMerge: mode.merge}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Restore the local version so the next iteration conflicts
				// again.
				if err := sess.Update(local); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// --- F3: full-text query latency, indexed vs scan ---

func BenchmarkF3FullTextIndexed(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			seed(b, db, n, 512)
			if err := db.EnableFullText(); err != nil {
				b.Fatal(err)
			}
			queries := workload.New(6).Queries(64)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkF3FullTextScan(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			seed(b, db, n, 512)
			queries := workload.New(6).Queries(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ft.ScanSearch(queries[i%len(queries)], db.ScanAll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- W1: write-path latency vs number of open consumers (changefeed) ---

// writePathDB opens a database with the requested number of views (each
// with a formula column, so maintenance does real work) and optionally a
// full-text index.
func writePathDB(b *testing.B, views int, fulltext bool) *domino.Database {
	b.Helper()
	db := openBench(b, domino.NewReplicaID())
	for v := 0; v < views; v++ {
		def, err := domino.NewView(fmt.Sprintf("w%d", v), "SELECT @All",
			domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true},
			domino.ViewColumn{Title: "Cat", ItemName: "Category", Sorted: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.AddView(nil, def); err != nil {
			b.Fatal(err)
		}
	}
	if fulltext {
		if err := db.EnableFullText(); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkW1WritePath measures raw Put latency as consumers scale. With
// the changefeed, index maintenance runs on subscriber goroutines, so
// views=8 should sit within a small factor of views=0 — write latency
// independent of view count.
func BenchmarkW1WritePath(b *testing.B) {
	for _, views := range []int{0, 1, 8} {
		for _, ftOn := range []bool{false, true} {
			b.Run(fmt.Sprintf("views=%d/ft=%v", views, ftOn), func(b *testing.B) {
				db := writePathDB(b, views, ftOn)
				g := workload.New(11)
				docs := g.Corpus(b.N, 512)
				sess := db.Session("bench")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sess.Create(docs[i]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				db.Refresh() // drain maintainers so Cleanup's Close is fair
			})
		}
	}
}

// BenchmarkW1WritePathRefreshed is the synchronous-equivalent cost: every
// write is followed by a full refresh barrier, so maintenance latency is
// paid back on the writer. The gap between this and W1WritePath is what
// the changefeed takes off the write path.
func BenchmarkW1WritePathRefreshed(b *testing.B) {
	for _, views := range []int{0, 8} {
		b.Run(fmt.Sprintf("views=%d", views), func(b *testing.B) {
			db := writePathDB(b, views, false)
			g := workload.New(12)
			docs := g.Corpus(b.N, 512)
			sess := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Create(docs[i]); err != nil {
					b.Fatal(err)
				}
				db.Refresh()
			}
		})
	}
}

// --- T4: crash recovery time vs operations since the last checkpoint ---

func BenchmarkT4Recovery(b *testing.B) {
	for _, ops := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "crash.nsf")
			db, err := domino.Open(path, domino.Options{
				Title: "crash",
				Store: storeNoCheckpoint(),
			})
			if err != nil {
				b.Fatal(err)
			}
			g := workload.New(7)
			sess := db.Session("bench")
			for i := 0; i < ops; i++ {
				if err := sess.Create(g.Document(512)); err != nil {
					b.Fatal(err)
				}
			}
			// Abandon db without Close: the page file was never flushed, so
			// reopening replays all ops from the WAL.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db2, err := domino.Open(path, domino.Options{Store: storeNoCheckpoint()})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db2.Close()
				// Closing checkpointed; recreate the crashed state for the
				// next iteration only if more iterations remain.
				if i+1 < b.N {
					db3, err := domino.Open(path, domino.Options{Store: storeNoCheckpoint()})
					if err != nil {
						b.Fatal(err)
					}
					s3 := db3.Session("bench")
					for j := 0; j < ops; j++ {
						if err := s3.Create(g.Document(512)); err != nil {
							b.Fatal(err)
						}
					}
					// Abandon again.
				}
				b.StartTimer()
			}
		})
	}
}

// --- T5: Reader-field enforcement overhead on view reads ---

func BenchmarkT5Readers(b *testing.B) {
	for _, pct := range []int{0, 50, 95} {
		b.Run(fmt.Sprintf("restricted=%d%%", pct), func(b *testing.B) {
			db := openBench(b, domino.NewReplicaID())
			g := workload.New(8)
			sess := db.Session("bench")
			for i := 0; i < 5000; i++ {
				n := g.Document(256)
				if i*100/5000 < pct {
					n.SetWithFlags("DocReaders", domino.TextValue("somebody else"),
						domino.FlagReaders|domino.FlagSummary)
				}
				if err := sess.Create(n); err != nil {
					b.Fatal(err)
				}
			}
			def, _ := domino.NewView("v", "SELECT @All",
				domino.ViewColumn{Title: "Subject", ItemName: "Subject", Sorted: true})
			if err := db.AddView(nil, def); err != nil {
				b.Fatal(err)
			}
			reader := db.Session("reader")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reader.Rows("v"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T6: mail routing throughput (local delivery) ---

func BenchmarkT6Routing(b *testing.B) {
	d := domino.NewDirectory()
	d.AddUser(domino.User{Name: "ada", MailFile: "mail/ada.nsf"})
	mailbox := openBench(b, domino.NewReplicaID())
	inbox := openBench(b, domino.NewReplicaID())
	r := &domino.Router{
		ServerName:   "local",
		Mailbox:      mailbox,
		Directory:    d,
		OpenMailFile: func(string) (*domino.Database, error) { return inbox, nil },
	}
	g := workload.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		msg := g.Document(512)
		msg.SetText(router.ItemSendTo, "ada")
		if err := r.Deposit(msg); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := r.RouteOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T7: formula evaluation cost by complexity ---

func BenchmarkT7Formula(b *testing.B) {
	cases := []struct{ name, src string }{
		{"simple", `SELECT Form = "Memo"`},
		{"medium", `SELECT Form = "Memo" & Priority > 3 & @Contains(Subject; "report")`},
		{"complex", `x := @UpperCase(@Left(Subject; 10));
			y := @If(Priority > 5; "high"; Priority > 2; "mid"; "low");
			SELECT @Begins(x; "A") | (y = "high" & @Elements(@Explode(Body; " ")) > 20)`},
	}
	g := workload.New(10)
	docs := g.Corpus(256, 512)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			f, err := domino.CompileFormula(tc.src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Selects(docs[i%len(docs)], nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- W4: read path under concurrent writes (RW latch + note cache) ---

// BenchmarkW4ReadUnderWriter measures RawGet throughput from parallel
// readers while one writer continuously updates documents. The serialized
// mode is the seed's single-semaphore discipline (Options.SerializeReads);
// the default mode is the RW latch with the decoded-note cache. The
// scheduler is widened so the writer and readers genuinely interleave on a
// single-core box (at GOMAXPROCS=1 the writer only yields at blocking
// points and the comparison collapses into a scheduling artifact).
func BenchmarkW4ReadUnderWriter(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, mode := range []struct {
		name string
		opts store.Options
	}{
		{"serialized", store.Options{SerializeReads: true}},
		{"rw+cache", store.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := domino.Open(filepath.Join(b.TempDir(), "bench.nsf"),
				domino.Options{Title: "w4", Store: mode.opts})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			docs := seed(b, db, 2000, 512)
			hot := len(docs) / 10

			// The writer is paced (not free-running) so both modes face the
			// same write load and ns/op reflects reader latency, not the
			// CPU share a faster writer can grab.
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				g := workload.New(21)
				sess := db.Session("writer")
				tick := time.NewTicker(250 * time.Microsecond)
				defer tick.Stop()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					d := docs[i%len(docs)].Clone()
					g.Mutate(d)
					if err := sess.Update(d); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					var u domino.UNID
					if i%10 != 9 {
						u = docs[i*31%hot].OID.UNID
					} else {
						u = docs[i%len(docs)].OID.UNID
					}
					if _, err := db.RawGet(u); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			close(stop)
			<-writerDone
		})
	}
}

// BenchmarkW4ScanAll measures a full snapshot scan against the serialized
// (latch-held) ablation — same deliverables, different writer impact.
func BenchmarkW4ScanAll(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts store.Options
	}{
		{"serialized", store.Options{SerializeReads: true}},
		{"rw+cache", store.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := domino.Open(filepath.Join(b.TempDir(), "bench.nsf"),
				domino.Options{Title: "w4scan", Store: mode.opts})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			seed(b, db, 2000, 512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count := 0
				if err := db.ScanAll(func(*domino.Note) bool { count++; return true }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
